#include "serialize/universe_codec.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "jigsaw/board.hpp"
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"
#include "serialize/framing.hpp"
#include "serialize/log_codec.hpp"  // escape_field / unescape_field

namespace icecube {

namespace {

constexpr char kHeader[] = "icecube-universe";

std::vector<std::string> tokens_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string token;
  while (is >> token) out.push_back(token);
  return out;
}

std::string field(const std::string& token) {
  const auto decoded = unescape_field(token);
  if (!decoded) throw std::invalid_argument("bad escape: " + token);
  return *decoded;
}

template <typename T>
T number(const std::string& token) {
  return static_cast<T>(std::stoll(token));
}

}  // namespace

std::string ObjectRegistry::type_of(const SharedObject& object) const {
  for (const auto& [name, entry] : types_) {
    if (entry.matcher(object)) return name;
  }
  return {};
}

std::string ObjectRegistry::encode(const std::string& type,
                                   const SharedObject& object) const {
  return types_.at(type).encoder(object);
}

std::unique_ptr<SharedObject> ObjectRegistry::decode(
    const std::string& type, const std::string& payload) const {
  const auto it = types_.find(type);
  if (it == types_.end()) return nullptr;
  try {
    return it->second.factory(payload);
  } catch (const std::exception&) {
    return nullptr;
  }
}

std::optional<std::string> encode_universe(const Universe& universe,
                                           const ObjectRegistry& registry) {
  std::ostringstream os;
  os << kHeader << ' ' << serialize_detail::kWireVersion << '\n';
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const SharedObject& object = universe.at(ObjectId(i));
    const std::string type = registry.type_of(object);
    if (type.empty()) return std::nullopt;
    os << type << ' ' << registry.encode(type, object) << '\n';
  }
  std::string body = os.str();
  body += serialize_detail::crc_trailer(body);
  return body;
}

DecodedUniverse decode_universe(const std::string& text,
                                const ObjectRegistry& registry) {
  DecodedUniverse result;
  const auto frame = serialize_detail::parse_frame(text, kHeader);
  if (!frame.ok()) {
    result.error = frame.error;
    return result;
  }
  Universe universe;
  for (std::size_t i = 0; i < frame.lines.size(); ++i) {
    const std::string& line = frame.lines[i];
    const std::size_t line_no = i + 2;  // 1-based; header is line 1
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const std::string type = line.substr(0, space);
    const std::string payload =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (!registry.knows(type)) {
      result.error = {DecodeErrorKind::kUnknownOp, line_no, type};
      return result;
    }
    auto object = registry.decode(type, payload);
    if (object == nullptr) {
      result.error = {DecodeErrorKind::kBadOperands, line_no, type};
      return result;
    }
    (void)universe.add(std::move(object));
  }
  result.universe = std::move(universe);
  return result;
}

ObjectRegistry make_builtin_object_registry() {
  ObjectRegistry reg;

  // --- counter ---
  reg.register_type(
      "counter",
      [](const SharedObject& o) {
    return dynamic_cast<const Counter*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        return std::to_string(dynamic_cast<const Counter&>(o).value());
      },
      [](const std::string& p) {
        return std::make_unique<Counter>(number<std::int64_t>(p));
      });

  // --- register ---
  reg.register_type(
      "register",
      [](const SharedObject& o) {
    return dynamic_cast<const RwRegister*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        return std::to_string(dynamic_cast<const RwRegister&>(o).value());
      },
      [](const std::string& p) {
        return std::make_unique<RwRegister>(number<std::int64_t>(p));
      });

  // --- file system: "d <path>" and "f <path> <content>" entries ---
  reg.register_type(
      "fs",
      [](const SharedObject& o) {
    return dynamic_cast<const FileSystem*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& fs = dynamic_cast<const FileSystem&>(o);
        std::ostringstream os;
        for (const auto& path : fs.list()) {
          if (path == "/") continue;  // implicit root
          if (fs.is_dir(path)) {
            os << "d " << escape_field(path) << ' ';
          } else {
            os << "f " << escape_field(path) << ' '
               << escape_field(*fs.read(path)) << ' ';
          }
        }
        return os.str();
      },
      [](const std::string& p) {
        auto fs = std::make_unique<FileSystem>();
        const auto tokens = tokens_of(p);
        for (std::size_t i = 0; i < tokens.size();) {
          if (tokens[i] == "d") {
            if (!fs->mkdir(field(tokens.at(i + 1)))) {
              throw std::invalid_argument("bad mkdir");
            }
            i += 2;
          } else if (tokens[i] == "f") {
            if (!fs->write(field(tokens.at(i + 1)), field(tokens.at(i + 2)))) {
              throw std::invalid_argument("bad write");
            }
            i += 3;
          } else {
            throw std::invalid_argument("bad fs entry");
          }
        }
        return fs;
      });

  // --- calendar: "<owner> <hour> <label> ..." ---
  reg.register_type(
      "calendar",
      [](const SharedObject& o) {
    return dynamic_cast<const Calendar*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& cal = dynamic_cast<const Calendar&>(o);
        std::ostringstream os;
        os << escape_field(cal.owner());
        for (const auto& [hour, label] : cal.bookings()) {
          os << ' ' << hour << ' ' << escape_field(label);
        }
        return os.str();
      },
      [](const std::string& p) {
        const auto tokens = tokens_of(p);
        auto cal = std::make_unique<Calendar>(field(tokens.at(0)));
        for (std::size_t i = 1; i + 1 < tokens.size(); i += 2) {
          cal->book(number<int>(tokens[i]), field(tokens[i + 1]));
        }
        return cal;
      });

  // --- OS: "<version> d <dev>... r <dev> <ver>..." ---
  reg.register_type(
      "os",
      [](const SharedObject& o) {
    return dynamic_cast<const OsSystem*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& os_obj = dynamic_cast<const OsSystem&>(o);
        std::ostringstream os;
        os << os_obj.version();
        for (int dev : os_obj.devices()) os << " d " << dev;
        for (const auto& [dev, ver] : os_obj.drivers()) {
          os << " r " << dev << ' ' << ver;
        }
        return os.str();
      },
      [](const std::string& p) {
        const auto tokens = tokens_of(p);
        auto os_obj = std::make_unique<OsSystem>(number<int>(tokens.at(0)));
        for (std::size_t i = 1; i < tokens.size();) {
          if (tokens[i] == "d") {
            os_obj->buy(number<int>(tokens.at(i + 1)));
            i += 2;
          } else if (tokens[i] == "r") {
            os_obj->install_driver(number<int>(tokens.at(i + 1)),
                                   number<int>(tokens.at(i + 2)));
            i += 3;
          } else {
            throw std::invalid_argument("bad os entry");
          }
        }
        return os_obj;
      });

  // --- budget ---
  reg.register_type(
      "budget",
      [](const SharedObject& o) {
    return dynamic_cast<const SysBudget*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        return std::to_string(dynamic_cast<const SysBudget&>(o).balance());
      },
      [](const std::string& p) {
        return std::make_unique<SysBudget>(number<std::int64_t>(p));
      });

  // --- jigsaw board: "<rows> <cols> <case> p <piece> <row> <col> ..." ---
  reg.register_type(
      "board",
      [](const SharedObject& o) {
    return dynamic_cast<const jigsaw::Board*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& board = dynamic_cast<const jigsaw::Board&>(o);
        std::ostringstream os;
        os << board.rows() << ' ' << board.cols() << ' '
           << static_cast<int>(board.order_case());
        for (int piece = 0; piece < board.piece_count(); ++piece) {
          if (const auto pos = board.position(piece)) {
            os << " p " << piece << ' ' << pos->row << ' ' << pos->col;
          }
        }
        return os.str();
      },
      [](const std::string& p) {
        const auto tokens = tokens_of(p);
        auto board = std::make_unique<jigsaw::Board>(
            number<int>(tokens.at(0)), number<int>(tokens.at(1)),
            static_cast<jigsaw::Board::OrderCase>(number<int>(tokens.at(2))));
        for (std::size_t i = 3; i < tokens.size(); i += 4) {
          if (tokens.at(i) != "p") throw std::invalid_argument("bad board");
          board->place(number<int>(tokens.at(i + 1)),
                       jigsaw::Cell{number<int>(tokens.at(i + 2)),
                                    number<int>(tokens.at(i + 3))});
        }
        return board;
      });

  // --- OT text: "<text> [i <site> <pos> <str> | d <site> <pos> <len>]..."
  reg.register_type(
      "text",
      [](const SharedObject& o) {
    return dynamic_cast<const TextBuffer*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& buf = dynamic_cast<const TextBuffer&>(o);
        std::ostringstream os;
        os << escape_field(buf.text());
        for (const TextEdit& e : buf.history()) {
          if (e.kind == TextEdit::Kind::kInsert) {
            os << " i " << e.site << ' ' << e.pos << ' '
               << escape_field(e.text);
          } else {
            os << " d " << e.site << ' ' << e.pos << ' ' << e.len;
          }
        }
        return os.str();
      },
      [](const std::string& p) {
        const auto tokens = tokens_of(p);
        std::vector<TextEdit> history;
        for (std::size_t i = 1; i < tokens.size(); i += 4) {
          const int site = number<int>(tokens.at(i + 1));
          const auto pos = number<std::size_t>(tokens.at(i + 2));
          if (tokens.at(i) == "i") {
            history.push_back(
                TextEdit::insert(site, pos, field(tokens.at(i + 3))));
          } else if (tokens.at(i) == "d") {
            history.push_back(TextEdit::remove(
                site, pos, number<std::size_t>(tokens.at(i + 3))));
          } else {
            throw std::invalid_argument("bad text edit");
          }
        }
        return std::make_unique<TextBuffer>(
            TextBuffer::restore(field(tokens.at(0)), std::move(history)));
      });

  // --- line file: "<line0> <line1> ..." ---
  reg.register_type(
      "linefile",
      [](const SharedObject& o) {
    return dynamic_cast<const LineFile*>(&o) != nullptr;
  },
      [](const SharedObject& o) {
        const auto& f = dynamic_cast<const LineFile&>(o);
        std::ostringstream os;
        for (std::size_t i = 0; i < f.line_count(); ++i) {
          if (i != 0) os << ' ';
          os << escape_field(f.line(i));
        }
        return os.str();
      },
      [](const std::string& p) {
        std::vector<std::string> lines;
        for (const auto& token : tokens_of(p)) lines.push_back(field(token));
        return std::make_unique<LineFile>(std::move(lines));
      });

  return reg;
}

ObjectRegistry ObjectRegistry::with_builtins() {
  return make_builtin_object_registry();
}

}  // namespace icecube
