// Log serialization — shipping isolated-execution logs between sites.
//
// Reconciliation is distributed in practice: a site must transmit its log
// to wherever the merge runs (§2.1's reconciliation phase). This codec
// writes logs to a line-oriented text format and reconstructs them through
// a registry of per-operation factories.
//
// Format version 2 (current; one action per line, between header and
// trailer):
//
//   icecube-log 2 <escaped-name>
//   <op> | <target ids> | <int params> | <escaped string params>
//   #crc32 <8-hex digest of everything above>
//
// Example:
//
//   icecube-log 2 alice
//   increment | 0 | 100 |
//   fswrite | 1 | | /dir/file content
//   #crc32 9ae0daaf
//
// The CRC-32 trailer is what makes shipping safe over unreliable channels:
// a missing trailer is reported as truncation, a mismatching one as
// corruption — before any content is trusted. Version-1 payloads (no
// trailer) remain decodable for compatibility with stored logs.
//
// Strings are %-escaped (%, space, newline, '|'), so the format is
// whitespace-delimited and diff-friendly. Every action type in this
// repository carries its full construction data in (targets, tag), and its
// factory is pre-registered; applications add their own with
// `ActionRegistry::register_op`.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/log.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// Reconstructs actions from (targets, tag). Factories receive the decoded
/// pieces and return the action, or nullptr if the data is malformed.
class ActionRegistry {
 public:
  using Factory = std::function<ActionPtr(
      const std::vector<ObjectId>& targets, const Tag& tag)>;

  /// The registry with every built-in substrate action pre-registered.
  [[nodiscard]] static ActionRegistry with_builtins();

  void register_op(std::string op, Factory factory) {
    factories_[std::move(op)] = std::move(factory);
  }
  [[nodiscard]] bool knows(const std::string& op) const {
    return factories_.contains(op);
  }
  /// Builds the action; nullptr if the op is unknown or the data invalid.
  [[nodiscard]] ActionPtr make(const std::vector<ObjectId>& targets,
                               const Tag& tag) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Serialises `log` to the version-2 text format above (CRC trailer
/// included).
[[nodiscard]] std::string encode_log(const Log& log);

/// Result of decoding: the log, or a structured error (see DecodeError).
struct DecodedLog {
  std::optional<Log> log;
  DecodeError error;  ///< kind == kNone iff decoding succeeded

  [[nodiscard]] bool ok() const { return log.has_value(); }
};

/// Parses a serialised log, reconstructing actions via `registry`. Accepts
/// versions 1 (legacy, no trailer) and 2 (CRC-verified).
[[nodiscard]] DecodedLog decode_log(const std::string& text,
                                    const ActionRegistry& registry);

/// Escaping helpers (exposed for tests).
[[nodiscard]] std::string escape_field(const std::string& raw);
[[nodiscard]] std::optional<std::string> unescape_field(
    const std::string& escaped);

}  // namespace icecube
