// Log serialization — shipping isolated-execution logs between sites.
//
// Reconciliation is distributed in practice: a site must transmit its log
// to wherever the merge runs (§2.1's reconciliation phase). This codec
// writes logs to a line-oriented text format and reconstructs them through
// a registry of per-operation factories.
//
// Format (one action per line, after a header):
//
//   icecube-log 1 <escaped-name>
//   <op> | <target ids> | <int params> | <escaped string params>
//
// Example:
//
//   icecube-log 1 alice
//   increment | 0 | 100 |
//   fswrite | 1 | | /dir/file content
//
// Strings are %-escaped (%, space, newline, '|'), so the format is
// whitespace-delimited and diff-friendly. Every action type in this
// repository carries its full construction data in (targets, tag), and its
// factory is pre-registered; applications add their own with
// `ActionRegistry::register_op`.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/log.hpp"

namespace icecube {

/// Reconstructs actions from (targets, tag). Factories receive the decoded
/// pieces and return the action, or nullptr if the data is malformed.
class ActionRegistry {
 public:
  using Factory = std::function<ActionPtr(
      const std::vector<ObjectId>& targets, const Tag& tag)>;

  /// The registry with every built-in substrate action pre-registered.
  [[nodiscard]] static ActionRegistry with_builtins();

  void register_op(std::string op, Factory factory) {
    factories_[std::move(op)] = std::move(factory);
  }
  [[nodiscard]] bool knows(const std::string& op) const {
    return factories_.contains(op);
  }
  /// Builds the action; nullptr if the op is unknown or the data invalid.
  [[nodiscard]] ActionPtr make(const std::vector<ObjectId>& targets,
                               const Tag& tag) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Serialises `log` to the text format above.
[[nodiscard]] std::string encode_log(const Log& log);

/// Result of decoding: the log, or an error description with line number.
struct DecodedLog {
  std::optional<Log> log;
  std::string error;  ///< non-empty iff decoding failed

  [[nodiscard]] bool ok() const { return log.has_value(); }
};

/// Parses a serialised log, reconstructing actions via `registry`.
[[nodiscard]] DecodedLog decode_log(const std::string& text,
                                    const ActionRegistry& registry);

/// Escaping helpers (exposed for tests).
[[nodiscard]] std::string escape_field(const std::string& raw);
[[nodiscard]] std::optional<std::string> unescape_field(
    const std::string& escaped);

}  // namespace icecube
