// Commitment frame — the wire format of the decentralised commitment
// protocol (replica/commit.hpp).
//
// One frame carries a site's entire commitment *knowledge*: every proposal
// and every vote it has heard of. Knowledge records are immutable and the
// set is grow-only, so receiving a frame is a set union — loss, reordering
// and duplication are harmless, and a crashed site re-announces its durable
// record wholesale on recovery.
//
// Format version 2 (line-oriented, strict):
//
//   icecube-commit 2 <site> <members> <stable-height> <n-props> <n-votes> <auth>
//   P <election> <proposer> <fingerprint> <n-uids> <uids-blob> <log-blob> <hash>
//   ...                                   x n-props
//   V <election> <runoff> <voter> <proposal-id>
//   ...                                   x n-votes
//   #crc32 <8-hex digest of every byte above>
//
// Every variable field travels %-escaped (log_codec rules), so blobs with
// embedded newlines collapse to a single token and the frame stays strictly
// line-parseable. Three integrity layers, outermost first:
//
//   - the CRC trailer covers the whole frame; any transport damage —
//     truncation, a single flipped bit anywhere — is classified as
//     kTruncated/kCorrupted before any content is trusted;
//   - <auth> is a seed-keyed digest over the content ("signed by seed"):
//     frames from a different cluster seed, or frames whose records were
//     re-assembled by something not holding the seed, fail authentication;
//   - each proposal carries a content hash; a record whose hash does not
//     match its fields is rejected (kBadOperands), so proposal ids are
//     content-addressed and votes cannot be re-pointed at altered content.
//
// A frame that fails any layer is rejected whole — never partially merged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serialize/decode_error.hpp"

namespace icecube {

/// One candidate stable prefix: the proposer's full committed history from
/// genesis (uids + encoded actions) and the state it claims to reach.
struct CommitProposal {
  std::uint64_t election = 0;  ///< stable height this proposal extends to
  std::string proposer;
  std::string fingerprint;          ///< claimed replay result
  std::vector<std::string> uids;    ///< full uid prefix, genesis onward
  std::string log_bytes;            ///< encode_log of the same actions
  std::uint32_t hash = 0;           ///< content hash (see commit_codec.cpp)

  /// Content-addressed identity: proposer, election and content hash.
  [[nodiscard]] std::string id() const;
};

/// Computes the content hash a well-formed proposal must carry.
[[nodiscard]] std::uint32_t commit_proposal_hash(const CommitProposal& p);

/// One immutable vote: `voter` endorses `proposal_id` in the given
/// election runoff. A correct site casts at most one per (election, runoff).
struct CommitVote {
  std::uint64_t election = 0;
  std::uint32_t runoff = 0;
  std::string voter;
  std::string proposal_id;

  [[nodiscard]] bool operator<(const CommitVote& other) const {
    if (election != other.election) return election < other.election;
    if (runoff != other.runoff) return runoff < other.runoff;
    if (voter != other.voter) return voter < other.voter;
    return proposal_id < other.proposal_id;
  }
  [[nodiscard]] bool operator==(const CommitVote& other) const = default;
};

/// One commitment message: the sender's whole knowledge.
struct CommitFrame {
  std::string site;
  std::uint64_t members = 0;        ///< cluster size the sender assumes
  std::uint64_t stable_height = 0;  ///< decisions the sender has derived
  std::vector<CommitProposal> proposals;
  std::vector<CommitVote> votes;
};

/// True iff `payload` looks like a commitment frame (magic prefix); used to
/// dispatch mixed gossip/commit traffic. A true result says nothing about
/// validity — decode still applies every check.
[[nodiscard]] bool is_commit_frame(std::string_view payload);

/// Serialises `frame`, signing the content with `auth_seed`.
[[nodiscard]] std::string encode_commit_frame(const CommitFrame& frame,
                                              std::uint64_t auth_seed);

struct DecodedCommitFrame {
  std::optional<CommitFrame> frame;
  DecodeError error;  ///< kind == kNone iff decoding succeeded

  [[nodiscard]] bool ok() const { return frame.has_value(); }
};

/// Parses and authenticates a commitment frame. Any integrity failure
/// (CRC, auth, per-proposal hash, malformed record) rejects the whole
/// frame with a structured error.
[[nodiscard]] DecodedCommitFrame decode_commit_frame(const std::string& text,
                                                     std::uint64_t auth_seed);

}  // namespace icecube
