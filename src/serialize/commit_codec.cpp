#include "serialize/commit_codec.hpp"

#include <utility>

#include "serialize/framing.hpp"
#include "serialize/log_codec.hpp"
#include "util/crc32.hpp"

namespace icecube {

namespace {

using serialize_detail::parse_number;

constexpr std::string_view kMagic = "icecube-commit";
constexpr int kVersion = 2;
/// Caps against absurd allocations from hostile or mangled headers.
constexpr std::size_t kMaxRecords = 1u << 20;
constexpr std::size_t kMaxUids = 1u << 20;
constexpr std::size_t kMaxBlobBytes = 1u << 28;

std::string hex32(std::uint32_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xFu];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint32_t> parse_hex32(std::string_view token) {
  if (token.size() != 8) return std::nullopt;
  std::uint32_t out = 0;
  for (char c : token) {
    const int v = c >= '0' && c <= '9'   ? c - '0'
                  : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                         : -1;
    if (v < 0) return std::nullopt;
    out = (out << 4) | static_cast<std::uint32_t>(v);
  }
  return out;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ') {
      if (i > start) out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Renders one proposal as its canonical content line (without the hash
/// field); the content hash and the frame auth both digest this form.
std::string proposal_content(const CommitProposal& p) {
  std::string uids_blob;
  for (const std::string& uid : p.uids) {
    uids_blob += uid;
    uids_blob += '\n';
  }
  std::string out = "P " + std::to_string(p.election) + " " +
                    escape_field(p.proposer) + " " +
                    escape_field(p.fingerprint) + " " +
                    std::to_string(p.uids.size()) + " " +
                    escape_field(uids_blob) + " " + escape_field(p.log_bytes);
  return out;
}

std::string vote_line(const CommitVote& v) {
  return "V " + std::to_string(v.election) + " " +
         std::to_string(v.runoff) + " " + escape_field(v.voter) + " " +
         escape_field(v.proposal_id);
}

/// The seed-keyed content digest ("signature"). Covers the sender identity
/// and every record line, so records cannot be re-attributed or re-packed
/// without the seed.
std::uint32_t auth_digest(std::uint64_t seed, const CommitFrame& frame,
                          const std::vector<std::string>& content_lines) {
  Crc32 crc;
  crc.update("commit-auth:" + std::to_string(seed) + ":" +
             escape_field(frame.site) + ":" +
             std::to_string(frame.members) + ":" +
             std::to_string(frame.stable_height));
  for (const std::string& line : content_lines) {
    crc.update("\n");
    crc.update(line);
  }
  return crc.value();
}

}  // namespace

std::uint32_t commit_proposal_hash(const CommitProposal& p) {
  Crc32 crc;
  crc.update("commit-proposal:");
  crc.update(proposal_content(p));
  return crc.value();
}

std::string CommitProposal::id() const {
  return proposer + "@" + std::to_string(election) + "#" + hex32(hash);
}

bool is_commit_frame(std::string_view payload) {
  if (payload.size() <= kMagic.size()) return false;
  return payload.substr(0, kMagic.size()) == kMagic &&
         payload[kMagic.size()] == ' ';
}

std::string encode_commit_frame(const CommitFrame& frame,
                                std::uint64_t auth_seed) {
  std::vector<std::string> content;
  content.reserve(frame.proposals.size() + frame.votes.size());
  // The struct's hash ships as-is (records carry the hash they were
  // created with); decode recomputes and rejects any mismatch, so a
  // tampered record cannot survive even a correctly-CRC'd re-encoding.
  for (const CommitProposal& p : frame.proposals) {
    content.push_back(proposal_content(p) + " " + hex32(p.hash));
  }
  for (const CommitVote& v : frame.votes) content.push_back(vote_line(v));

  std::string out{kMagic};
  out += " " + std::to_string(kVersion);
  out += " " + escape_field(frame.site);
  out += " " + std::to_string(frame.members);
  out += " " + std::to_string(frame.stable_height);
  out += " " + std::to_string(frame.proposals.size());
  out += " " + std::to_string(frame.votes.size());
  out += " " + hex32(auth_digest(auth_seed, frame, content));
  out += "\n";
  for (const std::string& line : content) {
    out += line;
    out += "\n";
  }
  out += serialize_detail::crc_trailer(out);
  return out;
}

DecodedCommitFrame decode_commit_frame(const std::string& text,
                                       std::uint64_t auth_seed) {
  DecodedCommitFrame out;
  const auto fail = [&out](DecodeErrorKind kind, std::size_t line,
                           std::string context) {
    out.error = {kind, line, std::move(context)};
    return out;
  };

  // The CRC trailer is verified before any content is parsed, so transport
  // damage is classified first (kTruncated / kCorrupted).
  serialize_detail::Frame frame = serialize_detail::parse_frame(text, kMagic);
  if (!frame.ok()) {
    out.error = frame.error;
    return out;
  }
  if (frame.version != kVersion) {
    return fail(DecodeErrorKind::kUnsupportedVersion, 1,
                "version " + std::to_string(frame.version));
  }

  const std::vector<std::string> header = split_tokens(frame.header);
  if (header.size() != 8) {
    return fail(DecodeErrorKind::kBadHeader, 1, frame.header);
  }
  CommitFrame decoded;
  auto site = unescape_field(header[2]);
  const auto members = parse_number<std::uint64_t>(header[3]);
  const auto stable = parse_number<std::uint64_t>(header[4]);
  const auto n_props = parse_number<std::size_t>(header[5]);
  const auto n_votes = parse_number<std::size_t>(header[6]);
  const auto auth = parse_hex32(header[7]);
  if (!site || site->empty()) {
    return fail(DecodeErrorKind::kBadEscape, 1, header[2]);
  }
  if (!members || !stable || !n_props || !n_votes || *n_props > kMaxRecords ||
      *n_votes > kMaxRecords) {
    return fail(DecodeErrorKind::kBadNumber, 1, frame.header);
  }
  if (!auth) return fail(DecodeErrorKind::kBadNumber, 1, header[7]);
  decoded.site = std::move(*site);
  decoded.members = *members;
  decoded.stable_height = *stable;

  if (frame.lines.size() != *n_props + *n_votes) {
    return fail(DecodeErrorKind::kBadSyntax, 1,
                "record count mismatch: header says " +
                    std::to_string(*n_props + *n_votes) + ", frame has " +
                    std::to_string(frame.lines.size()));
  }

  decoded.proposals.reserve(*n_props);
  decoded.votes.reserve(*n_votes);
  for (std::size_t i = 0; i < frame.lines.size(); ++i) {
    const std::size_t line_no = i + 2;  // header is line 1
    const std::string& line = frame.lines[i];
    const std::vector<std::string> tokens = split_tokens(line);
    if (i < *n_props) {
      if (tokens.size() != 8 || tokens[0] != "P") {
        return fail(DecodeErrorKind::kBadSyntax, line_no, line);
      }
      CommitProposal p;
      const auto election = parse_number<std::uint64_t>(tokens[1]);
      auto proposer = unescape_field(tokens[2]);
      auto fingerprint = unescape_field(tokens[3]);
      const auto n_uids = parse_number<std::size_t>(tokens[4]);
      auto uids_blob = unescape_field(tokens[5]);
      auto log_blob = unescape_field(tokens[6]);
      const auto hash = parse_hex32(tokens[7]);
      if (!election) {
        return fail(DecodeErrorKind::kBadNumber, line_no, tokens[1]);
      }
      if (!proposer || proposer->empty() || !fingerprint) {
        return fail(DecodeErrorKind::kBadEscape, line_no, line);
      }
      if (!n_uids || *n_uids > kMaxUids) {
        return fail(DecodeErrorKind::kBadNumber, line_no, tokens[4]);
      }
      if (!uids_blob || !log_blob) {
        return fail(DecodeErrorKind::kBadEscape, line_no, line);
      }
      if (uids_blob->size() > kMaxBlobBytes ||
          log_blob->size() > kMaxBlobBytes) {
        return fail(DecodeErrorKind::kBadOperands, line_no,
                    "blob exceeds size cap");
      }
      if (!hash) return fail(DecodeErrorKind::kBadNumber, line_no, tokens[7]);
      p.election = *election;
      p.proposer = std::move(*proposer);
      p.fingerprint = std::move(*fingerprint);
      p.log_bytes = std::move(*log_blob);
      // The uid blob is '\n'-terminated per uid; empty uids are invalid.
      std::size_t start = 0;
      while (start < uids_blob->size()) {
        const std::size_t nl = uids_blob->find('\n', start);
        if (nl == std::string::npos) {
          return fail(DecodeErrorKind::kBadOperands, line_no,
                      "unterminated uid blob");
        }
        if (nl == start) {
          return fail(DecodeErrorKind::kBadOperands, line_no, "empty uid");
        }
        p.uids.push_back(uids_blob->substr(start, nl - start));
        start = nl + 1;
      }
      if (p.uids.size() != *n_uids) {
        return fail(DecodeErrorKind::kBadOperands, line_no,
                    "uid count mismatch");
      }
      // Content-addressing: the carried hash must match the content, so a
      // vote's proposal id cannot be re-pointed at altered content.
      p.hash = *hash;
      if (commit_proposal_hash(p) != p.hash) {
        return fail(DecodeErrorKind::kBadOperands, line_no,
                    "proposal hash mismatch");
      }
      decoded.proposals.push_back(std::move(p));
    } else {
      if (tokens.size() != 5 || tokens[0] != "V") {
        return fail(DecodeErrorKind::kBadSyntax, line_no, line);
      }
      CommitVote v;
      const auto election = parse_number<std::uint64_t>(tokens[1]);
      const auto runoff = parse_number<std::uint32_t>(tokens[2]);
      auto voter = unescape_field(tokens[3]);
      auto proposal_id = unescape_field(tokens[4]);
      if (!election || !runoff) {
        return fail(DecodeErrorKind::kBadNumber, line_no, line);
      }
      if (!voter || voter->empty() || !proposal_id || proposal_id->empty()) {
        return fail(DecodeErrorKind::kBadEscape, line_no, line);
      }
      v.election = *election;
      v.runoff = *runoff;
      v.voter = std::move(*voter);
      v.proposal_id = std::move(*proposal_id);
      decoded.votes.push_back(std::move(v));
    }
  }

  // Authentication last: structure is sound, now prove the records were
  // packed by a holder of the cluster seed.
  std::vector<std::string> content;
  content.reserve(frame.lines.size());
  for (const CommitProposal& p : decoded.proposals) {
    content.push_back(proposal_content(p) + " " + hex32(p.hash));
  }
  for (const CommitVote& v : decoded.votes) content.push_back(vote_line(v));
  if (auth_digest(auth_seed, decoded, content) != *auth) {
    return fail(DecodeErrorKind::kCorrupted, 1, "auth digest mismatch");
  }

  out.frame = std::move(decoded);
  return out;
}

}  // namespace icecube
