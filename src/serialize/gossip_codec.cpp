#include "serialize/gossip_codec.hpp"

#include <string_view>

#include "serialize/framing.hpp"
#include "serialize/log_codec.hpp"
#include "util/crc32.hpp"

namespace icecube {

namespace {

using serialize_detail::parse_number;

constexpr std::string_view kMagic = "icecube-gossip";
constexpr int kVersion = 2;
constexpr std::string_view kEndMarker = "#gossip-end";
/// Caps against absurd allocations from hostile or mangled headers.
constexpr std::size_t kMaxUids = 1u << 20;
constexpr std::size_t kMaxSectionBytes = 1u << 28;

/// Reads one '\n'-terminated line starting at `pos`; advances `pos` past
/// the newline. Returns nullopt at end of input.
std::optional<std::string> take_line(const std::string& text,
                                     std::size_t& pos, std::size_t& line_no) {
  if (pos >= text.size()) return std::nullopt;
  const std::size_t nl = text.find('\n', pos);
  const std::size_t end = nl == std::string::npos ? text.size() : nl;
  std::string out = text.substr(pos, end - pos);
  pos = nl == std::string::npos ? text.size() : nl + 1;
  ++line_no;
  return out;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ' ') {
      if (i > start) out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Parses one "@<name> <len>" section tag plus its byte body.
bool take_section(const std::string& text, std::size_t& pos,
                  std::size_t& line_no, std::string_view name,
                  std::string& out, DecodeError& error) {
  const std::size_t tag_line = line_no + 1;
  auto tag = take_line(text, pos, line_no);
  if (!tag) {
    error = {DecodeErrorKind::kTruncated, tag_line,
             "missing @" + std::string(name) + " section"};
    return false;
  }
  const std::vector<std::string> tokens = split_tokens(*tag);
  if (tokens.size() != 2 || tokens[0] != "@" + std::string(name)) {
    error = {DecodeErrorKind::kBadSyntax, tag_line, *tag};
    return false;
  }
  const auto length = parse_number<std::size_t>(tokens[1]);
  if (!length || *length > kMaxSectionBytes) {
    error = {DecodeErrorKind::kBadNumber, tag_line, tokens[1]};
    return false;
  }
  if (pos + *length > text.size()) {
    error = {DecodeErrorKind::kTruncated, tag_line,
             "@" + std::string(name) + " section cut short"};
    return false;
  }
  out = text.substr(pos, *length);
  pos += *length;
  // The section body is followed by a separating newline.
  if (pos >= text.size() || text[pos] != '\n') {
    error = {DecodeErrorKind::kTruncated, tag_line,
             "@" + std::string(name) + " section unterminated"};
    return false;
  }
  ++pos;
  return true;
}

}  // namespace

std::string encode_gossip_frame(const GossipFrame& frame) {
  std::string out{kMagic};
  out += " " + std::to_string(kVersion);
  out += " " + escape_field(frame.site);
  out += " " + std::to_string(frame.epoch);
  out += " " + std::to_string(frame.history_uids.size());
  out += " " + std::to_string(frame.pending_uids.size());
  out += "\n";
  for (const std::string& uid : frame.history_uids) {
    out += escape_field(uid) + "\n";
  }
  for (const std::string& uid : frame.pending_uids) {
    out += escape_field(uid) + "\n";
  }
  const auto section = [&out](std::string_view name,
                              const std::string& bytes) {
    out += "@" + std::string(name) + " " + std::to_string(bytes.size()) +
           "\n";
    out += bytes;
    out += "\n";
  };
  section("history", frame.history_bytes);
  section("pending", frame.pending_bytes);
  section("universe", frame.universe_bytes);
  out += kEndMarker;
  out += "\n";
  // v2: a whole-frame CRC trailer. The sections carry their own CRCs, but
  // the envelope (site, epoch, uid lists) was previously unprotected — a
  // single flipped uid byte would decode silently to different content.
  out += serialize_detail::crc_trailer(out);
  return out;
}

DecodedGossipFrame decode_gossip_frame(const std::string& text) {
  DecodedGossipFrame out;
  if (text.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  // Peek the claimed version: a v2 frame must end with a valid whole-frame
  // CRC trailer, verified before any content is trusted so transport damage
  // is classified as kTruncated/kCorrupted rather than a syntax error.
  std::string body = text;
  {
    const std::size_t first_nl = text.find('\n');
    const std::string first_line =
        text.substr(0, first_nl == std::string::npos ? text.size() : first_nl);
    const std::vector<std::string> peek = split_tokens(first_line);
    if (peek.size() >= 2 && peek[0] == kMagic && peek[1] == "2") {
      if (text.back() != '\n') {
        out.error = {DecodeErrorKind::kTruncated, 0, "missing crc trailer"};
        return out;
      }
      const std::size_t prev_nl = text.rfind('\n', text.size() - 2);
      const std::size_t trailer_start =
          prev_nl == std::string::npos ? 0 : prev_nl + 1;
      const std::string_view trailer =
          std::string_view(text).substr(trailer_start,
                                        text.size() - trailer_start - 1);
      const std::string_view prefix = serialize_detail::kCrcPrefix;
      if (trailer.substr(0, prefix.size()) != prefix) {
        out.error = {DecodeErrorKind::kTruncated, 0, "missing crc trailer"};
        return out;
      }
      const std::string_view digest_hex = trailer.substr(prefix.size());
      std::uint32_t expected = 0;
      bool hex_ok = digest_hex.size() == 8;
      for (char c : digest_hex) {
        const int v = c >= '0' && c <= '9'   ? c - '0'
                      : c >= 'a' && c <= 'f' ? c - 'a' + 10
                      : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                             : -1;
        if (v < 0) {
          hex_ok = false;
          break;
        }
        expected = (expected << 4) | static_cast<std::uint32_t>(v);
      }
      if (!hex_ok) {
        out.error = {DecodeErrorKind::kCorrupted, 0, "bad crc trailer"};
        return out;
      }
      if (Crc32::of(std::string_view(text).substr(0, trailer_start)) !=
          expected) {
        out.error = {DecodeErrorKind::kCorrupted, 0, "crc mismatch"};
        return out;
      }
      body = text.substr(0, trailer_start);
    }
  }

  std::size_t pos = 0;
  std::size_t line_no = 0;
  auto header = take_line(body, pos, line_no);
  if (!header) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }
  const std::vector<std::string> tokens = split_tokens(*header);
  if (tokens.size() != 6 || tokens[0] != kMagic) {
    out.error = {DecodeErrorKind::kBadHeader, 1, *header};
    return out;
  }
  const auto version = parse_number<int>(tokens[1]);
  if (!version) {
    out.error = {DecodeErrorKind::kBadHeader, 1, *header};
    return out;
  }
  // v1 frames (pre-CRC) are still accepted; v2 frames reached this point
  // only after their trailer verified.
  if (*version != 1 && *version != kVersion) {
    out.error = {DecodeErrorKind::kUnsupportedVersion, 1,
                 "version " + tokens[1]};
    return out;
  }

  GossipFrame frame;
  auto site = unescape_field(tokens[2]);
  if (!site) {
    out.error = {DecodeErrorKind::kBadEscape, 1, tokens[2]};
    return out;
  }
  frame.site = std::move(*site);
  const auto epoch = parse_number<std::uint64_t>(tokens[3]);
  const auto n_history = parse_number<std::size_t>(tokens[4]);
  const auto n_pending = parse_number<std::size_t>(tokens[5]);
  if (!epoch || !n_history || !n_pending || *n_history > kMaxUids ||
      *n_pending > kMaxUids) {
    out.error = {DecodeErrorKind::kBadNumber, 1, *header};
    return out;
  }
  frame.epoch = *epoch;

  const auto take_uids = [&](std::size_t count,
                             std::vector<std::string>& uids) -> bool {
    uids.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t uid_line = line_no + 1;
      auto raw = take_line(body, pos, line_no);
      if (!raw) {
        out.error = {DecodeErrorKind::kTruncated, uid_line,
                     "uid list cut short"};
        return false;
      }
      auto uid = unescape_field(*raw);
      if (!uid || uid->empty()) {
        out.error = {DecodeErrorKind::kBadEscape, uid_line, *raw};
        return false;
      }
      uids.push_back(std::move(*uid));
    }
    return true;
  };
  if (!take_uids(*n_history, frame.history_uids)) return out;
  if (!take_uids(*n_pending, frame.pending_uids)) return out;

  if (!take_section(body, pos, line_no, "history", frame.history_bytes,
                    out.error) ||
      !take_section(body, pos, line_no, "pending", frame.pending_bytes,
                    out.error) ||
      !take_section(body, pos, line_no, "universe", frame.universe_bytes,
                    out.error)) {
    return out;
  }

  const std::size_t end_line = line_no + 1;
  auto marker = take_line(body, pos, line_no);
  if (!marker || *marker != kEndMarker || body.back() != '\n') {
    out.error = {DecodeErrorKind::kTruncated, end_line,
                 "missing end marker"};
    return out;
  }
  if (pos != body.size()) {
    out.error = {DecodeErrorKind::kBadSyntax, end_line,
                 "trailing bytes after end marker"};
    return out;
  }

  out.frame = std::move(frame);
  return out;
}

}  // namespace icecube
