#include "stream/daemon.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "core/policy.hpp"
#include "solver/local_search.hpp"
#include "util/timer.hpp"

namespace icecube {

std::uint64_t stream_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double LatencyHistogram::quantile_ms(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto want = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= want && buckets_[b] > 0) {
      // Geometric midpoint of bucket [2^b, 2^(b+1)).
      const double lo = std::exp2(static_cast<double>(b));
      return lo * 1.5 / 1e6;
    }
  }
  return 0.0;
}

namespace {

/// FNV-1a over the final (log, position, status) sequence — the
/// order-sensitive witness a capture summary pins the merged schedule with.
std::uint64_t schedule_digest(const std::vector<ActionRecord>& records,
                              const std::vector<ActionId>& sequence,
                              const std::vector<RunStatus>& status) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    const ActionRecord& rec = records[sequence[k].index()];
    mix(stream_priority(rec));
    mix(static_cast<std::uint64_t>(status[k]));
  }
  return h;
}

}  // namespace

StreamReconciler::StreamReconciler(Universe initial, StreamOptions options,
                                   CaptureSink* capture)
    : initial_(std::move(initial)),
      options_(options),
      capture_(capture),
      graph_(initial_),
      wheel_(0) {
  initial_.set_copy_mode(Universe::CopyMode::kCopyOnWrite);
  working_ = initial_.snapshot();
  digest0_ = universe_state_digest(initial_);
  solve_options_.backend = options_.backend;
  solve_options_.local_search = options_.local_search;
  solve_options_.limits = options_.limits;
  stats_.backend = options_.backend == SolverKind::kLocalSearch ? "ls"
                                                                : "greedy";
}

void StreamReconciler::emit(CaptureRecordKind kind, std::uint64_t time,
                            std::string payload) {
  if (kind != CaptureRecordKind::kSummary) {
    crc_.update(payload);
    crc_.update("\n");
  }
  capture_->record({kind, time, std::move(payload)});
}

std::uint32_t StreamReconciler::agg_find(std::uint32_t v) {
  while (agg_parent_[v] != v) {
    agg_parent_[v] = agg_parent_[agg_parent_[v]];
    v = agg_parent_[v];
  }
  return v;
}

void StreamReconciler::agg_unite(std::uint32_t a, std::uint32_t b) {
  a = agg_find(a);
  b = agg_find(b);
  if (a == b) return;
  const auto weight = [this](std::uint32_t r) {
    return aggs_[r].strands.size() + aggs_[r].pending.size();
  };
  if (weight(a) < weight(b)) std::swap(a, b);
  Agg& into = aggs_[a];
  Agg& from = aggs_[b];
  into.strands.insert(into.strands.end(), from.strands.begin(),
                      from.strands.end());
  into.pending.insert(into.pending.end(), from.pending.begin(),
                      from.pending.end());
  into.max_solved_priority =
      std::max(into.max_solved_priority, from.max_solved_priority);
  into.any_solved |= from.any_solved;
  // Keep whichever tail strand is still alive; the loser stays a normal
  // strand (appends require outranking the merged max_solved_priority, so
  // the surviving tail remains internally ascending).
  if (into.tail_strand == kNoStrand || !strands_[into.tail_strand].alive) {
    into.tail_strand = from.tail_strand;
  }
  from = Agg{};
  agg_parent_[b] = a;
}

ActionId StreamReconciler::ingest(LogId log, ActionPtr action,
                                  std::uint64_t submit_ns) {
  assert(!finished_);
  const std::size_t li = log.index();
  if (next_position_.size() <= li) next_position_.resize(li + 1, 0);
  const std::uint32_t pos = next_position_[li]++;
  const ActionId id = graph_.add_action(std::move(action), log, pos);

  ingest_ns_.push_back(submit_ns != 0 ? submit_ns : stream_now_ns());
  committed_status_.push_back(0);
  strand_of_.push_back(kNoStrand);
  frozen_.push_back(0);
  placed_epoch_.push_back(0);
  agg_parent_.push_back(id.value());
  aggs_.emplace_back();
  // Mirror the graph's unions (its partition is reachable only through
  // member scans, which the fast path must avoid) and queue the arrival on
  // its component.
  for (ActionId nbr : graph_.graph().overlap_lists[id.index()]) {
    agg_unite(id.value(), nbr.value());
  }
  aggs_[agg_find(id.value())].pending.push_back(id.value());
  ++counters_.ingested;

  if (capture_ != nullptr) {
    const ActionRecord& rec = graph_.records()[id.index()];
    emit(CaptureRecordKind::kAction, counters_.ingested - 1,
         std::to_string(log.value()) + " " + std::to_string(pos) + " " +
             rec.action->describe());
  }
  return id;
}

bool StreamReconciler::try_fast_appends(Agg& agg) {
  const std::vector<ActionRecord>& records = graph_.records();
  const SolverGraph& g = graph_.graph();
  std::vector<std::uint32_t>& pending = agg.pending;
  std::sort(pending.begin(), pending.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return stream_priority(records[a]) < stream_priority(records[b]);
            });

  // Appendability, checked per arrival in ascending priority: x must
  // outrank everything already placed in its component (so the batch Kahn
  // order ends with it), every predecessor must already be placed (earlier
  // pendings of this very batch count) and every successor must still be
  // unplaced (a successor ordered before x would move). Any failure falls
  // back to a full re-solve, which also absorbs the entries this loop
  // already placed.
  std::uint64_t max_prio = agg.max_solved_priority;
  bool any = agg.any_solved;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::uint32_t x = pending[i];
    const std::uint64_t p = stream_priority(records[x]);
    bool appendable = !any || p > max_prio;
    bool frozen_pred = false;
    if (appendable) {
      for (ActionId pr : g.preds[x]) {
        if (strand_of_[pr.index()] == kNoStrand) {
          appendable = false;
          break;
        }
        frozen_pred |= frozen_[pr.index()] != 0;
      }
    }
    if (appendable) {
      for (ActionId sc : g.succs[x]) {
        if (strand_of_[sc.index()] != kNoStrand) {
          appendable = false;
          break;
        }
      }
    }
    if (!appendable) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(i));
      return false;
    }

    RunStatus st = RunStatus::kDropped;
    if (!frozen_pred) {
      // The component's live members are all executed into `working_`, so
      // simulating against it is exactly the batch replay's tail step.
      const ActionRecord& rec = records[x];
      ++stats_.sim_steps;
      if (!rec.action->precondition(working_)) {
        st = RunStatus::kFailed;
        ++stats_.precondition_failures;
      } else if (rec.action->execute(working_)) {
        st = RunStatus::kExecuted;
      } else {
        // A failing execute may have partially mutated; the full re-solve
        // rewinds the component's footprint and repairs it.
        ++stats_.execution_failures;
        pending.erase(pending.begin(),
                      pending.begin() + static_cast<std::ptrdiff_t>(i));
        return false;
      }
    }

    if (frozen_pred) {
      // A frozen arrival stays a singleton strand: it only ever commits in
      // the finish-time tail merge, never through the heads heap.
      const auto sid = static_cast<std::uint32_t>(strands_.size());
      Strand s;
      s.solution.sequence = {ActionId(x)};
      s.solution.status = {st};
      s.solution.live_end = 0;
      s.solution.min_priority = p;
      s.last_disrupt_epoch = epoch_;
      strands_.push_back(std::move(s));
      strand_of_[x] = sid;
      frozen_[x] = 1;
      agg.strands.push_back(sid);
    } else {
      // Live arrivals grow the component's tail strand in place — one
      // strand and one heads-heap entry per run of appends, not per
      // action. Appends outrank max_solved_priority, so the tail stays
      // internally ascending, which is all the canonical merge needs.
      std::uint32_t sid = agg.tail_strand;
      if (sid == kNoStrand || !strands_[sid].alive) {
        sid = static_cast<std::uint32_t>(strands_.size());
        Strand fresh;
        fresh.solution.min_priority = p;
        strands_.push_back(std::move(fresh));
        agg.strands.push_back(sid);
        agg.tail_strand = sid;
      }
      Strand& s = strands_[sid];
      s.solution.sequence.push_back(ActionId(x));
      s.solution.status.push_back(st);
      ++s.solution.live_end;
      strand_of_[x] = sid;
      frozen_[x] = 0;
      placed_epoch_[x] = epoch_;
      push_head(sid);
    }
    agg.max_solved_priority = p;
    agg.any_solved = true;
    max_prio = p;
    any = true;
    ++counters_.fast_appends;
  }
  pending.clear();
  return true;
}

void StreamReconciler::full_resolve(Agg& agg, std::uint32_t rep,
                                    bool allow_moves) {
  const ActionId root = graph_.component_root(ActionId(rep));
  const std::vector<ActionId>& members = graph_.component_members(root);
  const SubProblem sub =
      extract_subproblem(graph_.records(), graph_.graph(), members);
  const std::uint64_t max_prio = stream_priority(sub.records.back());
  const Deadline no_deadline;
  ComponentSolution sol =
      solve_component(sub, initial_, working_, solve_options_, allow_moves,
                      digest0_, no_deadline, stats_);

  // A commit promised each entry's status; a re-solve that flips one is a
  // violation (counted once — the committed record is updated to the new
  // truth, which the final merge will also report).
  for (std::size_t k = 0; k < sol.sequence.size(); ++k) {
    const std::size_t id = sol.sequence[k].index();
    const auto now_status = static_cast<std::uint8_t>(sol.status[k]) + 1;
    if (committed_status_[id] != 0 && committed_status_[id] != now_status) {
      ++counters_.commit_violations;
      committed_status_[id] = now_status;
    }
  }

  for (std::uint32_t sid : agg.strands) strands_[sid].alive = false;
  agg.strands.clear();
  agg.tail_strand = kNoStrand;

  const auto sid = static_cast<std::uint32_t>(strands_.size());
  Strand s;
  s.solution = std::move(sol);
  s.last_disrupt_epoch = epoch_;
  s.needs_polish =
      options_.backend == SolverKind::kLocalSearch && !allow_moves;
  for (std::size_t k = 0; k < s.solution.sequence.size(); ++k) {
    const std::size_t id = s.solution.sequence[k].index();
    strand_of_[id] = sid;
    frozen_[id] = k >= s.solution.live_end ? 1 : 0;
  }
  strands_.push_back(std::move(s));
  agg.strands.push_back(sid);
  agg.max_solved_priority = max_prio;
  agg.any_solved = true;
  agg.pending.clear();
  ++counters_.full_resolves;
  push_head(sid);
}

void StreamReconciler::process_root(std::uint32_t rep, bool allow_moves) {
  Agg& agg = aggs_[rep];
  if (agg.pending.empty()) return;
  if (options_.backend != SolverKind::kLocalSearch && try_fast_appends(agg)) {
    return;
  }
  full_resolve(agg, rep, allow_moves);
}

void StreamReconciler::push_head(std::uint32_t sid) {
  Strand& s = strands_[sid];
  // At most one heads entry per strand: if the current head is already
  // filed, appended entries behind it ride along for free (the head is the
  // strand's minimum, so the heap's global order is unaffected).
  if (s.filed) return;
  const std::vector<ActionId>& seq = s.solution.sequence;
  while (s.next < s.solution.live_end &&
         committed_status_[seq[s.next].index()] != 0) {
    ++s.next;
  }
  if (s.next < s.solution.live_end) {
    s.filed = true;
    heads_.emplace_back(
        stream_priority(graph_.records()[seq[s.next].index()]), sid);
    std::push_heap(heads_.begin(), heads_.end(), std::greater<>{});
  }
}

void StreamReconciler::commit_at(std::uint32_t sid, std::size_t pos,
                                 std::uint64_t now) {
  Strand& s = strands_[sid];
  const ActionId id = s.solution.sequence[pos];
  const RunStatus st = s.solution.status[pos];
  committed_status_[id.index()] = static_cast<std::uint8_t>(st) + 1;
  committed_.push_back(CommitEntry{id, st, epoch_});
  const std::uint64_t born = ingest_ns_[id.index()];
  latency_.record(now > born ? now - born : 0);
  ++counters_.committed;
}

void StreamReconciler::commit_walk(bool finishing) {
  const std::vector<ActionRecord>& records = graph_.records();
  // One clock sample stamps the whole walk: latency buckets are log2-wide,
  // far coarser than a walk's duration, and the per-commit clock_gettime
  // was measurable at streaming rates.
  const std::uint64_t now = stream_now_ns();
  while (!heads_.empty()) {
    const auto [prio, sid] = heads_.front();
    Strand& s = strands_[sid];
    bool stale = !s.alive;
    if (!stale) {
      const std::vector<ActionId>& seq = s.solution.sequence;
      while (s.next < s.solution.live_end &&
             committed_status_[seq[s.next].index()] != 0) {
        ++s.next;
      }
      stale = s.next >= s.solution.live_end ||
              stream_priority(records[seq[s.next].index()]) != prio;
    }
    if (stale) {
      std::pop_heap(heads_.begin(), heads_.end(), std::greater<>{});
      heads_.pop_back();
      s.filed = false;
      if (s.alive) push_head(sid);
      continue;
    }
    // The walk is strict: entries commit in global priority order, so a
    // not-yet-quiescent minimum head stalls the whole prefix (that is what
    // makes the committed log a canonical-merge prefix when arrivals are
    // monotone). The gate is per entry — a tail strand disrupted only by
    // appends still commits its settled head.
    const std::uint64_t disrupt =
        std::max(s.last_disrupt_epoch,
                 placed_epoch_[s.solution.sequence[s.next].index()]);
    if (!finishing && epoch_ - disrupt < options_.commit_quiescence) break;
    std::pop_heap(heads_.begin(), heads_.end(), std::greater<>{});
    heads_.pop_back();
    s.filed = false;
    commit_at(sid, s.next, now);
    ++s.next;
    push_head(sid);
  }
}

void StreamReconciler::run_epoch() {
  assert(!finished_);
  ++epoch_;
  ++counters_.epochs;
  const std::vector<ActionId> dirty = graph_.take_dirty_roots();

  bool degraded = false;
  const bool budgeted = options_.epoch_budget_us > 0;
  WheelTimer::TimerId budget_id = 0;
  std::uint64_t base_ns = 0;
  std::uint64_t wheel_base = 0;
  if (budgeted) {
    // Wheel ticks are microseconds relative to the daemon's lifetime; the
    // epoch's deadline is one budget past its start tick.
    base_ns = stream_now_ns();
    wheel_base = wheel_.now();
    budget_id = wheel_.schedule(wheel_base + options_.epoch_budget_us);
  }

  const std::uint64_t fast_before = counters_.fast_appends;
  const std::uint64_t full_before = counters_.full_resolves;
  for (ActionId groot : dirty) {
    if (budgeted && !degraded) {
      wheel_.advance(wheel_base + (stream_now_ns() - base_ns) / 1000,
                     [&](WheelTimer::TimerId id, std::uint64_t) {
                       if (id == budget_id) degraded = true;
                     });
    }
    process_root(agg_find(groot.value()),
                 options_.backend == SolverKind::kLocalSearch && !degraded);
  }
  if (budgeted) {
    wheel_.cancel(budget_id);
    if (degraded) ++counters_.degraded_epochs;
  }

  commit_walk(false);
  const std::uint64_t lag = counters_.ingested - counters_.committed;
  if (lag > counters_.max_commit_lag) counters_.max_commit_lag = lag;

  if (capture_ != nullptr) {
    emit(CaptureRecordKind::kTrace, epoch_,
         "epoch " + std::to_string(epoch_) + " dirty " +
             std::to_string(dirty.size()) + " fast " +
             std::to_string(counters_.fast_appends - fast_before) + " full " +
             std::to_string(counters_.full_resolves - full_before) +
             " committed " + std::to_string(counters_.committed) +
             " violations " + std::to_string(counters_.commit_violations));
  }
}

StreamResult StreamReconciler::finish() {
  assert(!finished_);
  // A final epoch places whatever the last run_epoch has not seen, then
  // local search re-polishes anything a budget degraded — so every
  // component's last solve is a full-quality solve of its final
  // membership, which is what batch equality needs.
  ++epoch_;
  ++counters_.epochs;
  for (ActionId groot : graph_.take_dirty_roots()) {
    process_root(agg_find(groot.value()),
                 options_.backend == SolverKind::kLocalSearch);
  }
  if (options_.backend == SolverKind::kLocalSearch) {
    std::vector<std::uint32_t> reps;
    for (const Strand& s : strands_) {
      if (s.alive && s.needs_polish) {
        reps.push_back(agg_find(s.solution.sequence.front().value()));
      }
    }
    std::sort(reps.begin(), reps.end());
    reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
    for (std::uint32_t rep : reps) full_resolve(aggs_[rep], rep, true);
  }
  finished_ = true;

  commit_walk(true);
  // Frozen tails commit last, merged by priority (mirroring the canonical
  // merge's second pass).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> tails;
  std::vector<std::size_t> cursor(strands_.size(), 0);
  const std::vector<ActionRecord>& records = graph_.records();
  for (std::uint32_t sid = 0; sid < strands_.size(); ++sid) {
    const Strand& s = strands_[sid];
    if (!s.alive || s.solution.live_end >= s.solution.sequence.size()) {
      continue;
    }
    cursor[sid] = s.solution.live_end;
    tails.emplace_back(
        stream_priority(records[s.solution.sequence[cursor[sid]].index()]),
        sid);
  }
  std::make_heap(tails.begin(), tails.end(), std::greater<>{});
  const std::uint64_t tail_now = stream_now_ns();
  while (!tails.empty()) {
    std::pop_heap(tails.begin(), tails.end(), std::greater<>{});
    const std::uint32_t sid = tails.back().second;
    tails.pop_back();
    commit_at(sid, cursor[sid], tail_now);
    if (++cursor[sid] < strands_[sid].solution.sequence.size()) {
      tails.emplace_back(
          stream_priority(
              records[strands_[sid].solution.sequence[cursor[sid]].index()]),
          sid);
      std::push_heap(tails.begin(), tails.end(), std::greater<>{});
    }
  }
  const std::uint64_t lag = counters_.ingested - counters_.committed;
  if (lag > counters_.max_commit_lag) counters_.max_commit_lag = lag;

  // The canonical merge: every alive strand is one part; the k-way
  // priority merge over strands equals the batch per-component merge
  // (strands partition each component into [full solve][appended suffix]
  // runs whose heads interleave exactly as the component's Kahn order).
  std::vector<const ComponentSolution*> parts;
  parts.reserve(strands_.size());
  for (const Strand& s : strands_) {
    if (s.alive) parts.push_back(&s.solution);
  }
  StreamResult result;
  merge_solutions(parts, records, result.sequence, result.status);

  Outcome out;
  for (std::size_t k = 0; k < result.sequence.size(); ++k) {
    if (result.status[k] == RunStatus::kExecuted) {
      out.schedule.push_back(result.sequence[k]);
    } else {
      out.skipped.push_back(result.sequence[k]);
    }
  }
  out.final_state = working_.snapshot();
  out.complete = true;
  Policy neutral;
  out.cost = neutral.cost(out);

  stats_.constraint_pairs_evaluated = graph_.build_stats().pairs_evaluated;
  stats_.stream_epochs = counters_.epochs;
  stats_.commit_violations = counters_.commit_violations;
  stats_.max_commit_lag = counters_.max_commit_lag;

  if (capture_ != nullptr) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof crc_hex, "%08x", crc_.value());
    std::string payload = std::string("crc ") + crc_hex + "\n";
    payload += "ingested " + std::to_string(counters_.ingested);
    payload += " epochs " + std::to_string(counters_.epochs);
    payload += " fast " + std::to_string(counters_.fast_appends);
    payload += " full " + std::to_string(counters_.full_resolves);
    payload += " committed " + std::to_string(counters_.committed);
    payload += " violations " + std::to_string(counters_.commit_violations);
    payload += " executed " + std::to_string(out.schedule.size());
    payload += " skipped " + std::to_string(out.skipped.size());
    payload += " digest " +
               std::to_string(
                   schedule_digest(records, result.sequence, result.status));
    emit(CaptureRecordKind::kSummary, epoch_, std::move(payload));
  }

  result.outcome = std::move(out);
  return result;
}

StreamDaemon::StreamDaemon(Universe initial, StreamOptions options,
                           std::size_t max_batch)
    : core_(std::move(initial), options),
      max_batch_(std::max<std::size_t>(1, max_batch)),
      consumer_([this] { consume(); }) {}

StreamDaemon::~StreamDaemon() {
  closed_.store(true, std::memory_order_release);
  if (consumer_.joinable()) consumer_.join();
}

bool StreamDaemon::try_submit(LogId log, ActionPtr action) {
  return ring_.try_push(Item{std::move(action), log.value(),
                             stream_now_ns()});
}

void StreamDaemon::submit(LogId log, ActionPtr action) {
  Item item{std::move(action), log.value(), stream_now_ns()};
  while (!ring_.try_push(item)) {
    std::this_thread::yield();
  }
}

void StreamDaemon::consume() {
  std::vector<Item> buffer(max_batch_);
  for (;;) {
    const std::size_t got = ring_.pop_batch(buffer.begin(), max_batch_);
    if (got == 0) {
      if (closed_.load(std::memory_order_acquire) && ring_.empty()) break;
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < got; ++i) {
      core_.ingest(LogId(buffer[i].log), std::move(buffer[i].action),
                   buffer[i].submit_ns);
    }
    core_.run_epoch();
  }
}

StreamResult StreamDaemon::finish() {
  closed_.store(true, std::memory_order_release);
  if (consumer_.joinable()) consumer_.join();
  return core_.finish();
}

}  // namespace icecube
