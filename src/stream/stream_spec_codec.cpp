#include "stream/stream_spec_codec.hpp"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

#include "serialize/framing.hpp"
#include "util/rng.hpp"

namespace icecube {

namespace {

constexpr std::string_view kSpecMagic = "stream-spec";
constexpr int kSpecVersion = 1;

std::string fmt_double(double v) {
  char buf[64];
  // 17 significant digits round-trip any double exactly.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void put(std::string& out, std::string_view key, const std::string& value) {
  out += key;
  out += ' ';
  out += value;
  out += '\n';
}

std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t end = line.find(' ', start);
    if (end == std::string_view::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    if (end > start) tokens.push_back(line.substr(start, end - start));
    start = end + 1;
  }
  return tokens;
}

bool parse_double(std::string_view token, double& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

std::string encode_stream_spec(const StreamSpec& spec) {
  std::string out;
  out += kSpecMagic;
  out += ' ';
  out += std::to_string(kSpecVersion);
  out += '\n';
  const workload::FagesSpec& w = spec.workload;
  put(out, "replicas", std::to_string(w.replicas));
  put(out, "tasks", std::to_string(w.tasks_per_replica));
  put(out, "density", fmt_double(w.dependency_density));
  put(out, "conflict", fmt_double(w.conflict_ratio));
  put(out, "resources", std::to_string(w.shared_resources));
  put(out, "capacity", std::to_string(w.resource_capacity));
  put(out, "seed", std::to_string(w.seed));
  put(out, "backend",
      std::string(spec.backend == SolverKind::kLocalSearch ? "ls"
                                                           : "greedy"));
  put(out, "arrival", std::string(to_string(spec.arrival)));
  put(out, "arrival-seed", std::to_string(spec.arrival_seed));
  put(out, "batch", std::to_string(spec.batch));
  put(out, "quiescence", std::to_string(spec.commit_quiescence));
  return out;
}

StreamSpecDecode decode_stream_spec(const std::string& text) {
  using serialize_detail::parse_number;
  StreamSpecDecode out;
  if (text.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  std::vector<std::string_view> lines;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    lines.push_back(rest.substr(0, nl));
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    out.error = {DecodeErrorKind::kEmptyInput, 0, {}};
    return out;
  }

  const std::vector<std::string_view> head = split(lines.front());
  if (head.size() != 2 || head[0] != kSpecMagic) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(lines.front())};
    return out;
  }
  const auto version = parse_number<int>(head[1]);
  if (!version) {
    out.error = {DecodeErrorKind::kBadHeader, 1, std::string(head[1])};
    return out;
  }
  if (*version < 1 || *version > kSpecVersion) {
    out.error = {DecodeErrorKind::kUnsupportedVersion, 1,
                 "spec version " + std::to_string(*version)};
    return out;
  }

  StreamSpec& spec = out.spec;
  workload::FagesSpec& w = spec.workload;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string_view> tokens = split(lines[i]);
    if (tokens.empty()) continue;
    const std::string_view key = tokens.front();

    const auto want = [&](std::size_t n) {
      if (tokens.size() == n + 1) return true;
      out.error = {DecodeErrorKind::kBadSyntax, line_no,
                   std::string(lines[i])};
      return false;
    };
    const auto num = [&](std::string_view token, auto& field) {
      using T = std::remove_reference_t<decltype(field)>;
      const auto v = parse_number<T>(token);
      if (!v) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      field = *v;
      return true;
    };
    const auto dbl = [&](std::string_view token, double& field) {
      if (!parse_double(token, field)) {
        out.error = {DecodeErrorKind::kBadNumber, line_no,
                     std::string(token)};
        return false;
      }
      return true;
    };

    bool handled = true;
    if (key == "replicas") {
      handled = want(1) && num(tokens[1], w.replicas);
    } else if (key == "tasks") {
      handled = want(1) && num(tokens[1], w.tasks_per_replica);
    } else if (key == "density") {
      handled = want(1) && dbl(tokens[1], w.dependency_density);
    } else if (key == "conflict") {
      handled = want(1) && dbl(tokens[1], w.conflict_ratio);
    } else if (key == "resources") {
      handled = want(1) && num(tokens[1], w.shared_resources);
    } else if (key == "capacity") {
      handled = want(1) && num(tokens[1], w.resource_capacity);
    } else if (key == "seed") {
      handled = want(1) && num(tokens[1], w.seed);
    } else if (key == "backend") {
      if (!want(1)) {
        handled = false;
      } else if (tokens[1] == "greedy") {
        spec.backend = SolverKind::kGreedy;
      } else if (tokens[1] == "ls") {
        spec.backend = SolverKind::kLocalSearch;
      } else {
        out.error = {DecodeErrorKind::kBadSyntax, line_no,
                     std::string(tokens[1])};
        handled = false;
      }
    } else if (key == "arrival") {
      if (!want(1)) {
        handled = false;
      } else if (tokens[1] == "flatten") {
        spec.arrival = StreamArrival::kFlatten;
      } else if (tokens[1] == "roundrobin") {
        spec.arrival = StreamArrival::kRoundRobin;
      } else if (tokens[1] == "shuffled") {
        spec.arrival = StreamArrival::kShuffled;
      } else {
        out.error = {DecodeErrorKind::kBadSyntax, line_no,
                     std::string(tokens[1])};
        handled = false;
      }
    } else if (key == "arrival-seed") {
      handled = want(1) && num(tokens[1], spec.arrival_seed);
    } else if (key == "batch") {
      handled = want(1) && num(tokens[1], spec.batch);
    } else if (key == "quiescence") {
      handled = want(1) && num(tokens[1], spec.commit_quiescence);
    } else {
      out.error = {DecodeErrorKind::kBadSyntax, line_no,
                   std::string(lines[i])};
      handled = false;
    }
    if (!handled) return out;
  }
  return out;
}

/// The arrival interleaving as (log, position) pairs, per-log order kept.
static std::vector<std::pair<std::uint32_t, std::uint32_t>> arrival_order(
    const StreamSpec& spec, const std::vector<Log>& logs) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  std::size_t total = 0;
  for (const Log& log : logs) total += log.size();
  order.reserve(total);
  switch (spec.arrival) {
    case StreamArrival::kFlatten:
      for (std::uint32_t l = 0; l < logs.size(); ++l) {
        for (std::uint32_t p = 0; p < logs[l].size(); ++p) {
          order.emplace_back(l, p);
        }
      }
      break;
    case StreamArrival::kRoundRobin: {
      bool more = true;
      for (std::uint32_t p = 0; more; ++p) {
        more = false;
        for (std::uint32_t l = 0; l < logs.size(); ++l) {
          if (p < logs[l].size()) {
            order.emplace_back(l, p);
            more = true;
          }
        }
      }
      break;
    }
    case StreamArrival::kShuffled: {
      Rng rng(spec.arrival_seed);
      std::vector<std::uint32_t> next(logs.size(), 0);
      std::size_t remaining = total;
      while (remaining > 0) {
        std::uint64_t r = rng.below(remaining);
        for (std::uint32_t l = 0; l < logs.size(); ++l) {
          const std::uint64_t left = logs[l].size() - next[l];
          if (r < left) {
            order.emplace_back(l, next[l]++);
            break;
          }
          r -= left;
        }
        --remaining;
      }
      break;
    }
  }
  return order;
}

StreamRunReport run_stream(const StreamSpec& spec, CaptureSink* sink) {
  workload::Generated gen = workload::fages_workload(spec.workload);

  StreamOptions options;
  options.backend = spec.backend;
  options.commit_quiescence = spec.commit_quiescence;
  options.epoch_budget_us = 0;  // wall-clock degradation is not replayable

  StreamReconciler core(std::move(gen.initial), options, sink);
  const auto order = arrival_order(spec, gen.logs);
  std::uint32_t since_epoch = 0;
  for (const auto& [l, p] : order) {
    core.ingest(LogId(l), gen.logs[l].ptr(p));
    if (spec.batch > 0 && ++since_epoch >= spec.batch) {
      core.run_epoch();
      since_epoch = 0;
    }
  }
  if (since_epoch > 0) core.run_epoch();

  StreamRunReport report;
  report.result = core.finish();
  report.counters = core.counters();
  report.stats = core.stats();
  report.trace_crc = sink != nullptr ? core.trace_crc() : 0;
  return report;
}

StreamRunReport run_stream_captured(const StreamSpec& spec,
                                    CaptureSink& sink) {
  sink.record({CaptureRecordKind::kSpec, 0, encode_stream_spec(spec)});
  return run_stream(spec, &sink);
}

}  // namespace icecube
