// StreamSpec <-> wire text, and the pure replay function built on it.
//
// A streaming capture's first frame is a serialized StreamSpec: the Fages
// workload parameters, the daemon configuration and the arrival
// interleaving. `run_stream` is a pure function of that spec (the epoch
// budget is forced to zero — wall-clock degradation cannot be replayed),
// so the capture replay engine re-drives the identical daemon run and
// compares frame by frame, exactly as it does for chaos captures. The
// encoding mirrors chaos_spec_codec: line-based "key value" text under a
// versioned "stream-spec 1" header — the header keyword is also how
// `replay_capture` tells the two capture kinds apart.
#pragma once

#include <cstdint>
#include <string>

#include "capture/capture_sink.hpp"
#include "core/options.hpp"
#include "serialize/decode_error.hpp"
#include "stream/daemon.hpp"
#include "workload/generators.hpp"

namespace icecube {

/// How the generated logs are interleaved into the daemon's ingest stream.
/// Per-log order is always preserved (a replica ships its log in order);
/// the interleaving across logs is the adversarial knob.
enum class StreamArrival : std::uint8_t {
  kFlatten,     ///< log 0 entirely, then log 1, ... (replica-at-a-time)
  kRoundRobin,  ///< position 0 of every log, then position 1, ...
  kShuffled     ///< seeded random interleaving (per-log order kept)
};

[[nodiscard]] constexpr std::string_view to_string(StreamArrival a) {
  switch (a) {
    case StreamArrival::kFlatten:
      return "flatten";
    case StreamArrival::kRoundRobin:
      return "roundrobin";
    case StreamArrival::kShuffled:
      return "shuffled";
  }
  return "?";
}

/// Everything a deterministic streaming run depends on.
struct StreamSpec {
  workload::FagesSpec workload;
  SolverKind backend = SolverKind::kGreedy;
  StreamArrival arrival = StreamArrival::kFlatten;
  std::uint64_t arrival_seed = 1;
  /// Arrivals per epoch; 0 = ingest everything, solve only in finish().
  std::uint32_t batch = 64;
  std::uint64_t commit_quiescence = 1;
};

struct StreamSpecDecode {
  StreamSpec spec;
  DecodeError error;
  [[nodiscard]] bool ok() const { return error.ok(); }
};

[[nodiscard]] std::string encode_stream_spec(const StreamSpec& spec);
[[nodiscard]] StreamSpecDecode decode_stream_spec(const std::string& text);

/// What one deterministic streaming run reports.
struct StreamRunReport {
  StreamResult result;
  StreamCounters counters;
  SearchStats stats;
  std::uint32_t trace_crc = 0;  ///< 0 unless a sink was attached
};

/// Drives a StreamReconciler over the spec's generated workload in the
/// spec's arrival order — pure: identical spec (and sink-or-not) gives an
/// identical frame stream and result.
[[nodiscard]] StreamRunReport run_stream(const StreamSpec& spec,
                                         CaptureSink* sink = nullptr);

/// Records the serialized spec frame first, then runs with `sink` attached
/// — the canonical way to produce a self-describing streaming capture.
[[nodiscard]] StreamRunReport run_stream_captured(const StreamSpec& spec,
                                                  CaptureSink& sink);

}  // namespace icecube
