// Online streaming reconciliation (DESIGN.md §15).
//
// The batch engine answers "given these divergent logs, what is the best
// merged schedule?" once. The daemon answers it *continuously*: replicas
// ship log entries as they happen, and the reconciler keeps an incumbent
// merged schedule whose stable prefix it commits under a latency budget.
//
// The exactness contract (what makes streaming more than a heuristic):
// after `finish()`, the merged schedule, per-action statuses and final
// state are identical to a batch `reconcile()` over the same logs with the
// same backend — for ANY arrival interleaving that preserves per-log order.
// The mechanism is the conflict-component decomposition of
// solver/components.hpp: a component's compacted sub-problem (local ids in
// stream-priority order, canonical seed) is the same object no matter how
// its members trickled in, so re-solving the components arrivals touch and
// k-way merging by stream priority reproduces the batch answer.
//
// The mid-run committed log is weaker by design and the difference is the
// point: a commit promises the action's *status* (executed or dropped in
// the final schedule), not its final position. Re-solves that contradict an
// earlier commit are counted in `commit_violations`; the greedy backend
// with whole-log-at-a-time arrival provably never violates (an arrival with
// globally maximal priority and no successors lands at the end of its
// component's Kahn order and flips no earlier status).
//
// Per-arrival cost: extending the incremental constraint graph is
// O(overlap); placing the arrival is O(1) amortised on the greedy fast
// path (appendable arrivals), O(component) when local search re-solves.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "capture/capture_sink.hpp"
#include "core/incremental.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/universe.hpp"
#include "solver/components.hpp"
#include "util/crc32.hpp"
#include "util/spsc_ring.hpp"
#include "util/wheel_timer.hpp"

namespace icecube {

/// Daemon configuration. `backend` folds to two behaviours: kLocalSearch
/// runs the SA/tabu engine per component; everything else is greedy.
struct StreamOptions {
  SolverKind backend = SolverKind::kGreedy;
  LocalSearchOptions local_search;
  SearchLimits limits;
  /// Epochs a component solution must survive undisturbed (no full
  /// re-solve) before its entries may commit. 0 commits the same epoch.
  std::uint64_t commit_quiescence = 1;
  /// Per-epoch solve budget in microseconds; once the wheel-timer deadline
  /// fires, the epoch's remaining components degrade to their greedy
  /// construction (local search polishes them again in `finish`). 0 = no
  /// budget (required for capture determinism).
  std::uint64_t epoch_budget_us = 0;
};

/// Commit-latency distribution: log2-bucketed nanoseconds from submit (or
/// ingest) to commit. Quantiles interpolate geometrically within a bucket —
/// coarse, but allocation-free and O(1) per sample at ingest rates.
class LatencyHistogram {
 public:
  void record(std::uint64_t ns) {
    int bucket = 0;
    while (ns >> (bucket + 1) != 0 && bucket < 63) ++bucket;
    ++buckets_[static_cast<std::size_t>(bucket)];
    ++count_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// The q-quantile (q in [0,1]) in milliseconds; 0 when empty.
  [[nodiscard]] double quantile_ms(double q) const;

 private:
  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
};

/// Streaming-only accounting (solver work lands in SearchStats).
struct StreamCounters {
  std::uint64_t ingested = 0;
  std::uint64_t epochs = 0;
  std::uint64_t degraded_epochs = 0;  ///< epochs whose budget deadline fired
  /// Arrivals placed by the O(1) greedy append (no successors, maximal
  /// priority in their component) vs. full component re-solves.
  std::uint64_t fast_appends = 0;
  std::uint64_t full_resolves = 0;
  std::uint64_t committed = 0;
  /// Re-solves that changed the status of an already-committed action.
  std::uint64_t commit_violations = 0;
  std::uint64_t max_commit_lag = 0;  ///< peak ingested - committed
};

/// One committed-prefix entry: the promise that `id` has `status` in the
/// final schedule, made at `epoch`.
struct CommitEntry {
  ActionId id;
  RunStatus status = RunStatus::kExecuted;
  std::uint64_t epoch = 0;
};

/// What `finish()` returns: the canonical merged result (batch-equal) plus
/// the full sequence/status view the merge produced.
struct StreamResult {
  Outcome outcome;
  std::vector<ActionId> sequence;  ///< every action in merge order
  std::vector<RunStatus> status;   ///< parallel to `sequence`
};

/// The single-threaded reconciler core: ingest → incremental graph →
/// dirty-component solve → commit walk. `StreamDaemon` wraps it with the
/// SPSC ring and a consumer thread; tests and the deterministic capture
/// path drive it directly.
class StreamReconciler {
 public:
  /// `capture` (optional, not owned) receives one kAction frame per ingest,
  /// one kTrace frame per epoch and a kSummary frame from `finish` — all
  /// with deterministic payloads, so a captured run replays bit-exactly.
  StreamReconciler(Universe initial, StreamOptions options,
                   CaptureSink* capture = nullptr);

  // The incremental graph holds a pointer to `initial_`.
  StreamReconciler(const StreamReconciler&) = delete;
  StreamReconciler& operator=(const StreamReconciler&) = delete;

  /// Appends one action to `log` (positions are assigned per log in ingest
  /// order) and extends the constraint graph. `submit_ns` backdates the
  /// latency clock to when the producer enqueued the action; 0 = now.
  ActionId ingest(LogId log, ActionPtr action, std::uint64_t submit_ns = 0);

  /// One solve/commit round over the components ingests dirtied since the
  /// last epoch, bounded by `epoch_budget_us`.
  void run_epoch();

  /// Final unbudgeted solves (local search re-polishes anything a budget
  /// degraded), ungated commit of everything left, and the canonical
  /// k-way merge. The reconciler is spent afterwards.
  [[nodiscard]] StreamResult finish();

  [[nodiscard]] const std::vector<CommitEntry>& committed() const {
    return committed_;
  }
  [[nodiscard]] const StreamCounters& counters() const { return counters_; }
  [[nodiscard]] const SearchStats& stats() const { return stats_; }
  [[nodiscard]] const LatencyHistogram& commit_latency() const {
    return latency_;
  }
  [[nodiscard]] const IncrementalConstraintGraph& graph() const {
    return graph_;
  }
  [[nodiscard]] std::uint32_t trace_crc() const { return crc_.value(); }

 private:
  static constexpr std::uint32_t kNoStrand = UINT32_MAX;

  /// One solved run of a component: the live prefix commits through
  /// `next`, the frozen tail commits at finish. A full re-solve of the
  /// component kills its strands and replaces them with one fresh strand;
  /// the greedy fast path grows the component's tail strand in place
  /// (appended entries are priority-ascending by construction, all the
  /// canonical merge requires of a part).
  struct Strand {
    ComponentSolution solution;
    std::size_t next = 0;  ///< commit cursor into solution.sequence
    std::uint64_t last_disrupt_epoch = 0;
    bool alive = true;
    bool filed = false;         ///< has a live entry in the heads heap
    bool needs_polish = false;  ///< greedy-degraded under the ls backend
  };

  /// Daemon-side component aggregates, merged union-find style alongside
  /// the graph's own partition (the graph exposes only roots; the fast
  /// path must not scan members).
  struct Agg {
    std::vector<std::uint32_t> strands;  ///< alive strand ids (superset)
    std::vector<std::uint32_t> pending;  ///< arrived, not yet placed
    std::uint32_t tail_strand = kNoStrand;  ///< fast appends land here
    std::uint64_t max_solved_priority = 0;
    bool any_solved = false;
  };

  std::uint32_t agg_find(std::uint32_t v);
  void agg_unite(std::uint32_t a, std::uint32_t b);

  void process_root(std::uint32_t rep, bool allow_moves);
  /// The O(1) greedy placement; false = conditions not met, caller falls
  /// back to a full re-solve.
  bool try_fast_appends(Agg& agg);
  void full_resolve(Agg& agg, std::uint32_t rep, bool allow_moves);
  void push_head(std::uint32_t sid);
  void commit_walk(bool finishing);
  void commit_at(std::uint32_t sid, std::size_t pos, std::uint64_t now);
  void emit(CaptureRecordKind kind, std::uint64_t time, std::string payload);

  Universe initial_;  ///< pristine, copy-on-write source of rewinds
  Universe working_;  ///< all components' current final state
  StreamOptions options_;
  ReconcilerOptions solve_options_;  ///< derived view solve_component reads
  CaptureSink* capture_;
  IncrementalConstraintGraph graph_;
  std::uint64_t digest0_;
  WheelTimer wheel_;
  std::uint64_t epoch_ = 0;
  bool finished_ = false;

  std::vector<std::uint32_t> next_position_;  ///< per log
  std::vector<std::uint64_t> ingest_ns_;      ///< per action
  /// Per action: 0 = uncommitted, else RunStatus + 1 as committed.
  std::vector<std::uint8_t> committed_status_;
  std::vector<std::uint32_t> strand_of_;  ///< per action, kNoStrand = pending
  std::vector<std::uint8_t> frozen_;      ///< per action: in a frozen tail
  /// Per action: the epoch a fast append placed it (0 otherwise). The
  /// commit quiescence gate takes the max of this and the strand's
  /// last_disrupt_epoch, so a continuously-appended tail strand still
  /// commits its settled head entries.
  std::vector<std::uint64_t> placed_epoch_;

  std::vector<Strand> strands_;
  std::vector<std::uint32_t> agg_parent_;  ///< daemon-side union-find
  std::vector<Agg> aggs_;                  ///< valid at agg roots

  /// Lazy min-heap over strand heads: (priority of next committable entry,
  /// strand id). Stale entries are dropped on inspection.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> heads_;

  std::vector<CommitEntry> committed_;
  StreamCounters counters_;
  SearchStats stats_;
  LatencyHistogram latency_;
  Crc32 crc_;
};

/// The threaded daemon: a producer calls `submit` (wait-free unless the
/// ring is full), a dedicated consumer thread drains the ring in batches
/// and runs one epoch per batch. `finish()` closes the ring, joins and
/// returns the canonical result.
class StreamDaemon {
 public:
  static constexpr std::size_t kRingSlots = 1 << 14;

  /// `max_batch` caps how many arrivals one epoch ingests (the "batch" the
  /// wheel-timer budget covers).
  StreamDaemon(Universe initial, StreamOptions options,
               std::size_t max_batch = 256);
  ~StreamDaemon();

  StreamDaemon(const StreamDaemon&) = delete;
  StreamDaemon& operator=(const StreamDaemon&) = delete;

  /// Producer side; false when the ring is full (caller sheds or retries).
  [[nodiscard]] bool try_submit(LogId log, ActionPtr action);
  /// Producer side; spins until the ring accepts.
  void submit(LogId log, ActionPtr action);

  /// Closes ingest, drains, joins and finishes the core.
  [[nodiscard]] StreamResult finish();

  /// The core — safe to inspect only after `finish()` returned.
  [[nodiscard]] const StreamReconciler& reconciler() const { return core_; }

 private:
  struct Item {
    ActionPtr action;
    std::uint32_t log = 0;
    std::uint64_t submit_ns = 0;
  };

  void consume();

  StreamReconciler core_;
  std::size_t max_batch_;
  SpscRing<Item, kRingSlots> ring_;
  std::atomic<bool> closed_{false};
  std::thread consumer_;
};

/// Monotonic nanoseconds (steady clock), the daemon's latency timebase.
[[nodiscard]] std::uint64_t stream_now_ns();

}  // namespace icecube
