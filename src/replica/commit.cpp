#include "replica/commit.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>
#include <utility>

#include "core/mutation.hpp"
#include "serialize/log_codec.hpp"

namespace icecube {

CommitEngine::CommitEngine(GossipNode& node, std::size_t members,
                           CommitOptions options)
    : node_(node),
      members_(members < 1 ? 1 : members),
      options_(options),
      actions_(ActionRegistry::with_builtins()) {}

CommitEngine::CommitEngine(const CommitEngine& other, GossipNode& node)
    : node_(node),
      members_(other.members_),
      options_(other.options_),
      actions_(other.actions_),
      proposals_(other.proposals_),
      votes_(other.votes_),
      decided_(other.decided_),
      stable_uids_(other.stable_uids_),
      stats_(other.stats_),
      cached_frame_(other.cached_frame_),
      cache_dirty_(other.cache_dirty_) {
  assert(node_.name() == other.node_.name());
}

CommitEngine::Tally CommitEngine::tally(std::uint64_t election,
                                        std::uint32_t runoff) const {
  Tally t;
  auto it = votes_.lower_bound({election, runoff, {}});
  for (; it != votes_.end() && it->first.election == election &&
         it->first.runoff == runoff;
       ++it) {
    if (it->second.empty()) continue;
    ++t.heard;
    // An equivocating voter (more than one id in the slot) tallies as the
    // minimal id — deterministic, and the invariant layer flags it.
    ++t.counts[*it->second.begin()];
  }
  t.unheard = t.heard >= members_ ? 0 : members_ - t.heard;
  return t;
}

std::string CommitEngine::winner(const Tally& t) const {
  // Seeded defect (test-only, see core/mutation.hpp): treat unheard voters
  // as abstentions. Partial tallies then decide elections the missing
  // votes could overturn — the off-by-one the strict bounds below prevent.
  const std::size_t unheard =
      mutant_enabled(ProtocolMutant::kPluralityIgnoreUnheard) ? 0
                                                              : t.unheard;
  for (const auto& [id, count] : t.counts) {
    if (count <= unheard) continue;
    bool dominates = true;
    for (const auto& [other, other_count] : t.counts) {
      if (other == id) continue;
      if (count <= other_count + unheard) {
        dominates = false;
        break;
      }
    }
    // At most one id can dominate every competitor plus the unheard
    // votes, so the first hit is the only possible hit.
    if (dominates) return id;
  }
  return {};
}

bool CommitEngine::stuck(const Tally& t) const {
  // Provable stuckness: the tally is complete (every member voted) and no
  // strict-plurality winner exists. Complete tallies are immutable, so
  // this fact is global and permanent — mutually exclusive with any site
  // ever deciding this runoff.
  return t.heard >= members_ && t.unheard == 0 && winner(t).empty();
}

bool CommitEngine::proposal_valid(CommitProposalEntry& entry) {
  if (entry.valid >= 0) return entry.valid == 1;
  const CommitProposal& p = entry.proposal;
  bool ok = entry.decodable && p.election == decided_.size() &&
            p.uids.size() > stable_uids_.size();
  // Elections strictly extend the previously decided prefix.
  for (std::size_t i = 0; ok && i < stable_uids_.size(); ++i) {
    ok = p.uids[i] == stable_uids_[i];
  }
  if (ok) {
    std::unordered_set<std::string> seen;
    for (const std::string& uid : p.uids) {
      if (uid.empty() || !seen.insert(uid).second) {
        ok = false;
        break;
      }
    }
  }
  if (ok && options_.verify_proposals) {
    Universe replay = node_.genesis();
    for (const ActionPtr& action : entry.actions) {
      if (action == nullptr || !action->precondition(replay)) {
        ok = false;
        break;
      }
      Universe shadow = replay;
      if (!action->execute(shadow)) {
        ok = false;
        break;
      }
      replay = std::move(shadow);
    }
    ok = ok && replay.fingerprint() == p.fingerprint;
  }
  entry.valid = ok ? 1 : 0;
  return ok;
}

void CommitEngine::apply_decision(const CommitProposalEntry& entry) {
  stable_uids_ = entry.proposal.uids;

  // Fast path: the node's history already carries the decided prefix —
  // just mark it irrevocable.
  const std::vector<std::string>& hist = node_.history_uids();
  if (hist.size() >= stable_uids_.size() &&
      std::equal(stable_uids_.begin(), stable_uids_.end(), hist.begin())) {
    node_.set_stable_prefix(stable_uids_.size());
    ++stats_.fast_forwards;
    return;
  }

  // Divergent: rebase the node onto the decided prefix (its own committed
  // work outside the prefix is demoted to pending, never dropped).
  if (node_.rebase(entry.actions, entry.proposal.uids)) {
    ++stats_.rebases;
  } else {
    // Only reachable with verify_proposals off and a fingerprint liar
    // winning; the decision stands, the node keeps its state, and the
    // stable-prefix invariant will surface the gap.
    ++stats_.rebase_failures;
  }
}

std::size_t CommitEngine::derive_decisions() {
  std::size_t made = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::uint64_t election = decided_.size();
    for (std::uint32_t runoff = 0;; ++runoff) {
      const Tally t = tally(election, runoff);
      if (t.heard == 0) break;  // no votes here, none beyond
      const std::string id = winner(t);
      if (!id.empty()) {
        auto it = proposals_.find(id);
        // A tally winner can only be adopted once its content is known
        // and valid; until then we wait for gossip (the decision is
        // monotone — more knowledge cannot overturn it).
        if (it == proposals_.end() || !proposal_valid(it->second)) break;
        decided_.push_back(id);
        apply_decision(it->second);
        ++stats_.decisions;
        ++made;
        cache_dirty_ = true;
        progressed = true;
        break;  // next election
      }
      if (!stuck(t)) break;  // undecidable for now; votes may still arrive
    }
  }
  return made;
}

std::size_t CommitEngine::tick() {
  std::size_t made = derive_decisions();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const std::uint64_t election = decided_.size();

    // Propose: the node has committed beyond the stable prefix and this
    // site has not yet offered that lineage at the frontier election.
    if (node_.history().size() > stable_uids_.size()) {
      bool have_own = false;
      for (const auto& [id, entry] : proposals_) {
        if (entry.proposal.election == election &&
            entry.proposal.proposer == node_.name()) {
          have_own = true;
          break;
        }
      }
      if (!have_own) {
        CommitProposalEntry entry;
        CommitProposal& p = entry.proposal;
        p.election = election;
        p.proposer = node_.name();
        p.fingerprint = node_.committed_fingerprint();
        p.uids = node_.history_uids();
        Log log("history");
        for (const ActionPtr& action : node_.history()) log.append(action);
        p.log_bytes = encode_log(log);
        p.hash = commit_proposal_hash(p);
        entry.actions.assign(node_.history().begin(), node_.history().end());
        entry.decodable = true;
        proposals_.emplace(p.id(), std::move(entry));
        ++stats_.proposals_made;
        cache_dirty_ = true;
        progressed = true;
      }
    }

    // Vote: find the active runoff (past every provably stuck one) and
    // fill this site's slot if the rules allow.
    std::uint32_t runoff = 0;
    while (stuck(tally(election, runoff))) ++runoff;
    const CommitVoteKey own_key{election, runoff, node_.name()};
    if (!votes_.contains(own_key)) {
      std::string choice;
      if (runoff == 0) {
        // First round: endorse the best valid proposal known. Votes
        // already heard in this runoff weigh first — a late voter joins
        // the heaviest existing tally instead of splitting the round
        // across content-equal proposals from different proposers (any
        // vote is safe; the decision rule alone guards agreement). Ties
        // break by longest prefix, then fingerprint, then id.
        const Tally current = tally(election, runoff);
        const auto tallied = [&current](const std::string& id) {
          const auto it = current.counts.find(id);
          return it == current.counts.end() ? std::size_t{0} : it->second;
        };
        for (auto& [id, entry] : proposals_) {
          if (entry.proposal.election != election) continue;
          if (!proposal_valid(entry)) continue;
          if (choice.empty()) {
            choice = id;
            continue;
          }
          const CommitProposal& best = proposals_.at(choice).proposal;
          const CommitProposal& cand = entry.proposal;
          bool better;
          if (tallied(id) != tallied(choice)) {
            better = tallied(id) > tallied(choice);
          } else if (cand.uids.size() != best.uids.size()) {
            better = cand.uids.size() > best.uids.size();
          } else if (cand.fingerprint != best.fingerprint) {
            better = cand.fingerprint > best.fingerprint;
          } else {
            better = id > choice;
          }
          if (better) choice = id;
        }
      } else {
        // Runoff: the previous round is provably stuck, so its complete
        // vote set is global; everyone picks the same (tally, id) maximum
        // and the runoff is unanimous.
        const Tally prev = tally(election, runoff - 1);
        std::size_t best_count = 0;
        for (const auto& [id, count] : prev.counts) {
          if (choice.empty() || count > best_count ||
              (count == best_count && id > choice)) {
            choice = id;
            best_count = count;
          }
        }
      }
      if (!choice.empty()) {
        add_own_vote(election, runoff, choice);
        progressed = true;
      }
    }

    if (progressed) made += derive_decisions();
  }
  return made;
}

void CommitEngine::add_own_vote(std::uint64_t election, std::uint32_t runoff,
                                const std::string& proposal_id) {
  votes_[{election, runoff, node_.name()}].insert(proposal_id);
  ++stats_.votes_cast;
  if (runoff >= 1) ++stats_.runoff_votes;
  cache_dirty_ = true;
}

std::string CommitEngine::make_message(FaultPlan* faults, std::size_t time) {
  const bool stale =
      faults != nullptr && faults->vote_stale(node_.name(), time);
  const std::uint64_t frontier = decided_.size();

  const auto encode = [&](bool skip_frontier) {
    CommitFrame frame;
    frame.site = node_.name();
    frame.members = members_;
    frame.stable_height = decided_.size();
    for (const auto& [id, entry] : proposals_) {
      if (skip_frontier && entry.proposal.election == frontier) continue;
      frame.proposals.push_back(entry.proposal);
    }
    for (const auto& [key, ids] : votes_) {
      if (skip_frontier && key.election == frontier) continue;
      for (const std::string& id : ids) {
        frame.votes.push_back({key.election, key.runoff, key.voter, id});
      }
    }
    return encode_commit_frame(frame, options_.auth_seed);
  };

  std::string payload;
  if (stale) {
    payload = encode(true);
  } else {
    if (cache_dirty_) {
      cached_frame_ = encode(false);
      cache_dirty_ = false;
    }
    payload = cached_frame_;
  }
  if (faults != nullptr) {
    payload = faults->ship(FaultPoint::kShipCommit,
                           node_.name() + "/commit", time,
                           std::move(payload));
  }
  return payload;
}

CommitReceipt CommitEngine::receive(const std::string& message) {
  CommitReceipt receipt;
  ++stats_.frames_received;

  auto decoded = decode_commit_frame(message, options_.auth_seed);
  if (!decoded.ok()) {
    receipt.quarantined = true;
    receipt.error = decoded.error;
    ++stats_.quarantines;
    return receipt;
  }
  CommitFrame& frame = *decoded.frame;
  if (frame.members != members_) {
    receipt.quarantined = true;
    receipt.error = {DecodeErrorKind::kBadOperands, 1,
                     "member count mismatch: frame says " +
                         std::to_string(frame.members) + ", cluster has " +
                         std::to_string(members_)};
    ++stats_.quarantines;
    return receipt;
  }

  // Knowledge union — immutable records, grow-only sets, so duplicates
  // and reordering are no-ops by construction.
  for (CommitProposal& p : frame.proposals) {
    std::string id = p.id();
    if (proposals_.contains(id)) continue;
    CommitProposalEntry entry;
    entry.proposal = std::move(p);
    DecodedLog log = decode_log(entry.proposal.log_bytes, actions_);
    if (log.ok() && log.log->size() == entry.proposal.uids.size()) {
      entry.actions.assign(log.log->begin(), log.log->end());
      entry.decodable = true;
    }
    proposals_.emplace(std::move(id), std::move(entry));
    ++receipt.new_proposals;
  }
  for (const CommitVote& v : frame.votes) {
    if (votes_[{v.election, v.runoff, v.voter}].insert(v.proposal_id)
            .second) {
      ++receipt.new_votes;
    }
  }
  stats_.records_learned += receipt.new_proposals + receipt.new_votes;
  if (receipt.learned()) cache_dirty_ = true;

  receipt.new_decisions = tick();

  // Frames carry the sender's whole knowledge, so after the union a
  // strictly larger local record count proves the sender is missing
  // something — an immediate reply teaches it.
  std::size_t local_records = proposals_.size();
  for (const auto& [key, ids] : votes_) local_records += ids.size();
  receipt.reply_advised =
      frame.stable_height < decided_.size() ||
      local_records > frame.proposals.size() + frame.votes.size();
  return receipt;
}

bool commit_converged(const std::vector<CommitEngine>& engines) {
  if (engines.empty()) return true;
  const std::vector<std::string>& reference = engines.front().decided();
  for (const CommitEngine& engine : engines) {
    if (engine.decided() != reference) return false;
    const std::vector<std::string>& stable = engine.stable_uids();
    const std::vector<std::string>& hist = engine.node().history_uids();
    if (hist.size() < stable.size() ||
        !std::equal(stable.begin(), stable.end(), hist.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace icecube
