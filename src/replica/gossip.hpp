// Asynchronous anti-entropy reconciliation (the distributed step §2.1
// leaves open).
//
// The paper reconciles "at a single site"; replica/sync.hpp added a
// synchronous group round. This module drops the round entirely: sites
// exchange their logs pairwise and epidemically, in the style of Sutra &
// Shapiro's asynchronous decentralised commitment — no coordinator, no
// barrier, arbitrary latency. Each `GossipNode` keeps
//
//   - a *committed* universe — the result of replaying its committed
//     history from the shared genesis state,
//   - a *history* — the ordered, replayable log of committed actions since
//     genesis, each carrying a globally unique id ("site:seq"),
//   - a *pending* log — locally performed (or demoted, see below) actions
//     not yet committed, and
//   - an *epoch* — the length of its commitment lineage.
//
// One gossip exchange, receiver side:
//
//   same committed state  — pairwise IceCube reconciliation of the two
//     pending logs from the committed state; the best schedule is adopted
//     as the next epoch (epoch = max(epochs) + 1). Pending actions the
//     search dropped stay pending and are re-offered later.
//
//   divergent committed state — commitment is arbitrated by the total
//     order (epoch, fingerprint): the dominated side adopts the dominating
//     side's committed universe (the state-transfer payload, shipped
//     through FaultPoint::kShipUniverse) and history wholesale, after
//     re-validating that the history replays from genesis to exactly that
//     state. Committed actions of the dominated side missing from the
//     adopted history are *demoted* to pending — never silently dropped —
//     and re-reconciled into a later epoch.
//
// Every payload travels through the serialise codecs; a message whose
// frame or any section fails to decode is quarantined (counted, ignored),
// never partially applied. All decisions are deterministic, so two sites
// that merge the same pair of states compute bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/universe.hpp"
#include "fault/fault_plan.hpp"
#include "serialize/decode_error.hpp"
#include "serialize/gossip_codec.hpp"
#include "serialize/log_codec.hpp"
#include "serialize/universe_codec.hpp"

namespace icecube {

/// Knobs for one node's merge behaviour.
struct GossipOptions {
  /// Options for the pairwise reconciliations. Keep limits modest: merges
  /// run once per exchange.
  ReconcilerOptions reconcile;
  /// Replay a dominating history from genesis before adopting it, and
  /// reject the transfer if the replay does not reproduce the shipped
  /// committed state. Cheap insurance against logically-inconsistent
  /// payloads that happen to pass every CRC.
  bool verify_transfers = true;
};

/// Why a received message was quarantined — or, for the non-quarantine
/// kinds at the bottom, why an exchange committed nothing.
enum class GossipReject : std::uint8_t {
  kNone,
  kFrameError,     ///< envelope failed to parse
  kHistoryError,   ///< history section failed to decode
  kPendingError,   ///< pending section failed to decode
  kUniverseError,  ///< state-transfer section failed to decode
  kUidMismatch,    ///< uid lists inconsistent with the decoded logs
  kBadTarget,      ///< an action targets an object outside the universe
  kReplayMismatch, ///< history does not replay to the shipped state
  // Non-quarantine outcomes (the node may still be healthy):
  kNothingToMerge, ///< both pending logs empty — nothing offered at all
  kAllAborted,     ///< actions were offered but every schedule aborted all
                   ///< of them — a semantic stall, not an idle exchange
  kStableConflict, ///< transfer rewrites a locally-committed stable prefix
};

[[nodiscard]] constexpr std::string_view to_string(GossipReject reject) {
  switch (reject) {
    case GossipReject::kNone:
      return "ok";
    case GossipReject::kFrameError:
      return "frame error";
    case GossipReject::kHistoryError:
      return "history decode failed";
    case GossipReject::kPendingError:
      return "pending decode failed";
    case GossipReject::kUniverseError:
      return "universe decode failed";
    case GossipReject::kUidMismatch:
      return "uid mismatch";
    case GossipReject::kBadTarget:
      return "target out of range";
    case GossipReject::kReplayMismatch:
      return "history replay mismatch";
    case GossipReject::kNothingToMerge:
      return "nothing to merge";
    case GossipReject::kAllAborted:
      return "all candidate actions aborted";
    case GossipReject::kStableConflict:
      return "transfer conflicts with stable prefix";
  }
  return "?";
}

/// What one received message did to the node.
struct GossipReceipt {
  bool merged = false;          ///< pairwise merge adopted a new epoch
  bool state_transfer = false;  ///< adopted the sender's dominating state
  bool quarantined = false;     ///< message rejected, node untouched
  bool sender_stale = false;    ///< sender is strictly behind this node
  GossipReject reject = GossipReject::kNone;
  DecodeError error;            ///< decode detail when quarantined
  std::size_t demoted = 0;      ///< committed actions demoted to pending
  std::size_t merged_actions = 0;  ///< actions committed by this exchange

  [[nodiscard]] bool adopted() const { return merged || state_transfer; }
  /// True iff the sender would learn something from an immediate reply.
  [[nodiscard]] bool reply_advised() const {
    return adopted() || sender_stale;
  }
};

/// Lifetime counters, for reports and benches.
struct GossipStats {
  std::size_t performs = 0;       ///< local isolated-execution actions
  std::size_t merges = 0;         ///< pairwise merges adopted
  std::size_t merge_noops = 0;    ///< exchanges with nothing offered
  std::size_t merge_aborted = 0;  ///< exchanges where every offer aborted
  std::size_t transfers = 0;      ///< dominating states adopted
  std::size_t demotions = 0;      ///< committed actions demoted to pending
  std::size_t quarantines = 0;    ///< messages rejected
  std::size_t stale_heard = 0;    ///< messages from strictly-behind senders
  std::size_t stable_conflicts = 0;  ///< transfers refused: stable prefix
};

/// One replica running the asynchronous protocol; see file comment.
class GossipNode {
 public:
  /// All nodes of a group must be constructed with the same `genesis`.
  GossipNode(std::string name, Universe genesis, GossipOptions options = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const Universe& genesis() const { return genesis_; }
  [[nodiscard]] const Universe& committed() const { return committed_; }
  /// Committed state plus whatever pending actions currently replay.
  [[nodiscard]] const Universe& tentative() const { return tentative_; }
  [[nodiscard]] const GossipStats& stats() const { return stats_; }

  [[nodiscard]] const std::vector<ActionPtr>& history() const {
    return history_;
  }
  [[nodiscard]] const std::vector<std::string>& history_uids() const {
    return history_uids_;
  }
  [[nodiscard]] const std::vector<ActionPtr>& pending() const {
    return pending_;
  }
  [[nodiscard]] const std::vector<std::string>& pending_uids() const {
    return pending_uids_;
  }
  [[nodiscard]] std::string committed_fingerprint() const {
    return committed_.fingerprint();
  }
  /// Cached 64-bit digest of the committed state — what local equality
  /// checks (convergence, invariant tracking) compare instead of building
  /// the full fingerprint string. Wire payloads and the commitment total
  /// order keep the string form.
  [[nodiscard]] std::uint64_t committed_fingerprint_hash() const {
    return committed_.fingerprint_hash();
  }

  /// Isolated execution: runs `action` against the tentative state and
  /// records it as pending on success (assigning it a fresh uid). Returns
  /// false, state unchanged, if the precondition or execution fails.
  bool perform(ActionPtr action);

  /// Builds this node's gossip message. With `faults`, each section is
  /// passed through the faulty channel: logs via FaultPoint::kShipLog,
  /// the state-transfer payload via FaultPoint::kShipUniverse, keyed by
  /// (section subject, time) so a failing scenario replays exactly.
  [[nodiscard]] std::string make_message(FaultPlan* faults = nullptr,
                                         std::size_t time = 0) const;

  /// Processes one received gossip message; see file comment for the
  /// protocol. Quarantined messages leave the node untouched.
  GossipReceipt receive(const std::string& message);

  // --- decentralised-commitment hooks (driven by replica/commit.hpp) ---

  /// Length of the *stable* (irrevocably committed) history prefix. The
  /// stable prefix is decided by the commitment protocol; gossip state
  /// transfers that would rewrite it are refused (kStableConflict), so a
  /// decision can never be revoked by later anti-entropy.
  [[nodiscard]] std::size_t stable_length() const { return stable_; }

  /// Marks the first `length` history entries stable. `length` must not
  /// exceed the history; the stable prefix only ever grows.
  void set_stable_prefix(std::size_t length);

  /// Adopts `actions`/`uids` (a decided prefix that replays from genesis)
  /// as the new committed history: local committed actions missing from it
  /// are demoted to pending, pending actions it contains are absorbed, the
  /// epoch bumps past the current one so the rebased lineage dominates,
  /// and the whole prefix becomes stable. Returns false — node untouched —
  /// if the prefix does not replay cleanly from genesis.
  bool rebase(const std::vector<ActionPtr>& actions,
              const std::vector<std::string>& uids);

 private:
  void adopt_merge(Universe merged, std::vector<ActionPtr> schedule,
                   std::vector<std::string> schedule_uids,
                   std::uint64_t sender_epoch);
  void rebuild_tentative();
  [[nodiscard]] bool uid_known(const std::string& uid) const;

  std::string name_;
  GossipOptions options_;
  Universe genesis_;
  Universe committed_;
  Universe tentative_;
  std::uint64_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t stable_ = 0;

  std::vector<ActionPtr> history_;
  std::vector<std::string> history_uids_;
  std::vector<ActionPtr> pending_;
  std::vector<std::string> pending_uids_;

  ActionRegistry actions_;
  ObjectRegistry objects_;
  GossipStats stats_;
};

/// True iff all nodes report byte-identical committed fingerprints.
[[nodiscard]] bool gossip_converged(const std::vector<GossipNode>& nodes);

}  // namespace icecube
