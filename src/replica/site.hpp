// Replica sites and the isolated-execution phase (§2.1).
//
// "With IceCube, an application is either in the isolated execution phase
// or in the reconciliation phase. During isolated execution, a site
// executes its applications against a local replica of the shared objects,
// called the object universe. This brings the local object universe from
// some initial state to some tentative final state. Actions are recorded in
// a local log."
//
// `Site` packages that lifecycle: a committed state (the last state all
// replicas agreed on), a tentative state evolved by locally-performed
// actions, and the log of those actions. The log is *correct by
// construction*: an action is recorded only if its precondition held and
// its execution succeeded against the tentative state.
#pragma once

#include <string>
#include <utility>

#include "core/action.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"

namespace icecube {

/// One replica of the shared object universe.
class Site {
 public:
  Site(std::string name, Universe committed)
      : name_(std::move(name)),
        committed_(committed),
        tentative_(std::move(committed)),
        log_(name_) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// The last agreed state (the common initial state of the next
  /// reconciliation).
  [[nodiscard]] const Universe& committed() const { return committed_; }
  /// The local state including all tentatively-performed actions.
  [[nodiscard]] const Universe& tentative() const { return tentative_; }
  /// The isolated-execution log since the last commit.
  [[nodiscard]] const Log& log() const { return log_; }
  [[nodiscard]] bool has_local_updates() const { return !log_.empty(); }

  /// Isolated execution: runs `action` against the tentative state and
  /// records it on success. Returns false (state unchanged) if the
  /// precondition or execution fails — the log stays correct.
  bool perform(ActionPtr action) {
    if (!action->precondition(tentative_)) return false;
    Universe shadow = tentative_;
    if (!action->execute(shadow)) return false;
    tentative_ = std::move(shadow);
    log_.append(std::move(action));
    return true;
  }

  /// Adopts a reconciled state: it becomes both the committed and the
  /// tentative state, and the local log is cleared. Called when this site
  /// participated in a reconciliation round.
  void adopt(Universe reconciled) {
    committed_ = reconciled;
    tentative_ = std::move(reconciled);
    log_ = Log(name_);
  }

 private:
  std::string name_;
  Universe committed_;
  Universe tentative_;
  Log log_;
};

}  // namespace icecube
