#include "replica/gossip.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/mutation.hpp"
#include "core/reconciler.hpp"

namespace icecube {

namespace {

/// The commitment total order: lineage length first, then the canonical
/// state rendering as an arbitrary-but-global tie break.
bool dominates(std::uint64_t epoch_a, const std::string& fp_a,
               std::uint64_t epoch_b, const std::string& fp_b) {
  if (epoch_a != epoch_b) return epoch_a > epoch_b;
  return fp_a > fp_b;
}

bool targets_in_range(const Action& action, std::size_t universe_size) {
  for (ObjectId target : action.targets()) {
    if (target.index() >= universe_size) return false;
  }
  return true;
}

}  // namespace

GossipNode::GossipNode(std::string name, Universe genesis,
                       GossipOptions options)
    : name_(std::move(name)),
      options_(std::move(options)),
      genesis_(std::move(genesis)),
      committed_(genesis_),
      tentative_(genesis_),
      actions_(ActionRegistry::with_builtins()),
      objects_(ObjectRegistry::with_builtins()) {}

bool GossipNode::perform(ActionPtr action) {
  if (action == nullptr) return false;
  if (!targets_in_range(*action, tentative_.size())) return false;
  if (!action->precondition(tentative_)) return false;
  Universe shadow = tentative_;
  if (!action->execute(shadow)) return false;
  tentative_ = std::move(shadow);
  pending_uids_.push_back(name_ + ":" + std::to_string(next_seq_++));
  pending_.push_back(std::move(action));
  ++stats_.performs;
  return true;
}

std::string GossipNode::make_message(FaultPlan* faults,
                                     std::size_t time) const {
  Log history("history");
  for (const ActionPtr& action : history_) history.append(action);
  Log pending(name_);
  for (const ActionPtr& action : pending_) pending.append(action);

  GossipFrame frame;
  frame.site = name_;
  frame.epoch = epoch_;
  frame.history_uids = history_uids_;
  frame.pending_uids = pending_uids_;
  frame.history_bytes = encode_log(history);
  frame.pending_bytes = encode_log(pending);
  if (auto encoded = encode_universe(committed_, objects_)) {
    frame.universe_bytes = std::move(*encoded);
  }
  if (faults != nullptr) {
    frame.history_bytes =
        faults->ship(FaultPoint::kShipLog, name_ + "/history", time,
                     std::move(frame.history_bytes));
    frame.pending_bytes =
        faults->ship(FaultPoint::kShipLog, name_ + "/pending", time,
                     std::move(frame.pending_bytes));
    frame.universe_bytes =
        faults->ship(FaultPoint::kShipUniverse, name_ + "/state", time,
                     std::move(frame.universe_bytes));
  }
  return encode_gossip_frame(frame);
}

GossipReceipt GossipNode::receive(const std::string& message) {
  GossipReceipt receipt;
  const auto quarantine = [&](GossipReject why, DecodeError error = {}) {
    receipt.quarantined = true;
    receipt.reject = why;
    receipt.error = std::move(error);
    ++stats_.quarantines;
    return receipt;
  };

  auto decoded = decode_gossip_frame(message);
  if (!decoded.ok()) {
    return quarantine(GossipReject::kFrameError, decoded.error);
  }
  GossipFrame& frame = *decoded.frame;

  auto their_history = decode_log(frame.history_bytes, actions_);
  if (!their_history.ok()) {
    return quarantine(GossipReject::kHistoryError, their_history.error);
  }
  auto their_pending = decode_log(frame.pending_bytes, actions_);
  if (!their_pending.ok()) {
    return quarantine(GossipReject::kPendingError, their_pending.error);
  }
  // The state-transfer payload is decoded unconditionally: its fingerprint
  // is what tells same-state exchanges from divergent ones, so a damaged
  // universe section always quarantines the whole message.
  auto their_state = decode_universe(frame.universe_bytes, objects_);
  if (!their_state.ok()) {
    return quarantine(GossipReject::kUniverseError, their_state.error);
  }

  // Envelope consistency: one uid per action, all uids distinct.
  if (their_history.log->size() != frame.history_uids.size() ||
      their_pending.log->size() != frame.pending_uids.size()) {
    return quarantine(GossipReject::kUidMismatch);
  }
  {
    std::unordered_set<std::string> seen;
    for (const std::string& uid : frame.history_uids) {
      if (!seen.insert(uid).second) {
        return quarantine(GossipReject::kUidMismatch);
      }
    }
    for (const std::string& uid : frame.pending_uids) {
      if (!seen.insert(uid).second) {
        return quarantine(GossipReject::kUidMismatch);
      }
    }
  }

  // Shape checks: the sender must live in the same genesis-shaped universe
  // and every shipped action must target objects inside it.
  if (their_state.universe->size() != genesis_.size()) {
    return quarantine(GossipReject::kBadTarget);
  }
  for (const ActionPtr& action : *their_history.log) {
    if (!targets_in_range(*action, genesis_.size())) {
      return quarantine(GossipReject::kBadTarget);
    }
  }
  for (const ActionPtr& action : *their_pending.log) {
    if (!targets_in_range(*action, genesis_.size())) {
      return quarantine(GossipReject::kBadTarget);
    }
  }

  const std::string my_fp = committed_.fingerprint();
  const std::string their_fp = their_state.universe->fingerprint();

  if (their_fp == my_fp) {
    // --- same committed state: pairwise merge of the pending logs. ---
    // Drop remote pending actions this node already accounts for (its own
    // copy wins), so nothing is reconciled twice.
    Log remote(frame.site);
    std::vector<std::string> remote_uids;
    for (std::size_t i = 0; i < their_pending.log->size(); ++i) {
      if (uid_known(frame.pending_uids[i])) continue;
      remote.append(their_pending.log->ptr(i));
      remote_uids.push_back(frame.pending_uids[i]);
    }
    Log mine(name_);
    for (const ActionPtr& action : pending_) mine.append(action);

    if (mine.empty() && remote.empty()) {
      receipt.reject = GossipReject::kNothingToMerge;
      ++stats_.merge_noops;
      return receipt;
    }

    // Canonical input order (by log name) so two nodes merging each
    // other's crossing messages solve the identical problem and adopt
    // bit-identical results.
    std::vector<Log> logs;
    std::vector<const std::vector<std::string>*> uid_columns;
    if (name_ <= frame.site) {
      logs = {std::move(mine), std::move(remote)};
      uid_columns = {&pending_uids_, &remote_uids};
    } else {
      logs = {std::move(remote), std::move(mine)};
      uid_columns = {&remote_uids, &pending_uids_};
    }

    Reconciler reconciler(committed_, std::move(logs), options_.reconcile);
    ReconcileResult result = reconciler.run();
    if (!result.found_any() || result.best().schedule.empty()) {
      // Actions were offered, yet the best schedule commits none of them:
      // every candidate aborted. Distinct from an idle exchange — this is
      // the signature of a semantic stall (e.g. mutually-infeasible
      // actions) and the thing a commitment diagnosis needs to see.
      receipt.reject = GossipReject::kAllAborted;
      ++stats_.merge_aborted;
      return receipt;
    }

    const Outcome& best = result.best();
    std::vector<ActionPtr> schedule;
    std::vector<std::string> schedule_uids;
    schedule.reserve(best.schedule.size());
    schedule_uids.reserve(best.schedule.size());
    for (ActionId id : best.schedule) {
      const ActionRecord& record = reconciler.records()[id.index()];
      schedule.push_back(record.action);
      schedule_uids.push_back(
          uid_columns[record.log.index()]->at(record.position));
    }
    receipt.merged = true;
    receipt.merged_actions = schedule.size();
    adopt_merge(best.final_state, std::move(schedule),
                std::move(schedule_uids), frame.epoch);
    return receipt;
  }

  // --- divergent committed states: commitment arbitration. ---
  if (!dominates(frame.epoch, their_fp, epoch_, my_fp)) {
    receipt.sender_stale = true;
    ++stats_.stale_heard;
    return receipt;
  }

  // Irrevocability guard: a transfer may extend or re-derive the stable
  // prefix the commitment protocol decided, but never rewrite it. Refusing
  // here (rather than quarantining the sender as damaged) keeps the node
  // talking: the reply carries this node's dominating decided lineage.
  // (kStablePrefixRewrite seeds the historical defect of skipping this
  // guard: dominance then rewrites decided prefixes; see core/mutation.hpp.)
  if (stable_ > 0 &&
      !mutant_enabled(ProtocolMutant::kStablePrefixRewrite)) {
    bool preserves = frame.history_uids.size() >= stable_;
    for (std::size_t i = 0; preserves && i < stable_; ++i) {
      preserves = frame.history_uids[i] == history_uids_[i];
    }
    if (!preserves) {
      receipt.reject = GossipReject::kStableConflict;
      receipt.sender_stale = true;  // the reply teaches the sender
      ++stats_.stable_conflicts;
      return receipt;
    }
  }

  // The sender dominates: adopt its committed lineage wholesale (state
  // transfer), after checking the shipped history really replays from
  // genesis to the shipped state.
  if (options_.verify_transfers) {
    Universe replay = genesis_;
    bool replays = true;
    for (const ActionPtr& action : *their_history.log) {
      if (!action->precondition(replay) || !action->execute(replay)) {
        replays = false;
        break;
      }
    }
    if (!replays || replay.fingerprint() != their_fp) {
      return quarantine(GossipReject::kReplayMismatch);
    }
  }

  // Demote, never drop: committed actions of this node that the adopted
  // history does not contain go back to pending, ahead of the surviving
  // local pending actions, and get re-reconciled into a later epoch.
  std::unordered_set<std::string> adopted_uids(frame.history_uids.begin(),
                                               frame.history_uids.end());
  std::vector<ActionPtr> new_pending;
  std::vector<std::string> new_pending_uids;
  // (kTransferDropDemoted re-introduces the defect this loop fixes: the
  // dominated side's unique committed work silently vanishes.)
  if (!mutant_enabled(ProtocolMutant::kTransferDropDemoted)) {
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (adopted_uids.contains(history_uids_[i])) continue;
      new_pending.push_back(history_[i]);
      new_pending_uids.push_back(history_uids_[i]);
    }
  }
  receipt.demoted = new_pending.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (adopted_uids.contains(pending_uids_[i])) continue;
    new_pending.push_back(pending_[i]);
    new_pending_uids.push_back(pending_uids_[i]);
  }

  committed_ = std::move(*their_state.universe);
  epoch_ = frame.epoch;
  history_.assign(their_history.log->begin(), their_history.log->end());
  history_uids_ = frame.history_uids;
  pending_ = std::move(new_pending);
  pending_uids_ = std::move(new_pending_uids);
  rebuild_tentative();

  receipt.state_transfer = true;
  ++stats_.transfers;
  stats_.demotions += receipt.demoted;
  return receipt;
}

void GossipNode::set_stable_prefix(std::size_t length) {
  if (length > history_uids_.size()) length = history_uids_.size();
  if (length > stable_) stable_ = length;
}

bool GossipNode::rebase(const std::vector<ActionPtr>& actions,
                        const std::vector<std::string>& uids) {
  if (actions.size() != uids.size()) return false;

  // The decided prefix must replay cleanly from genesis; a prefix that
  // does not is a protocol-level inconsistency and is refused outright.
  Universe replay = genesis_;
  for (const ActionPtr& action : actions) {
    if (action == nullptr || !targets_in_range(*action, replay.size()) ||
        !action->precondition(replay)) {
      return false;
    }
    Universe shadow = replay;
    if (!action->execute(shadow)) return false;
    replay = std::move(shadow);
  }

  // Demote, never drop: committed actions outside the decided prefix go
  // back to pending; pending actions inside it are absorbed.
  std::unordered_set<std::string> decided(uids.begin(), uids.end());
  std::vector<ActionPtr> new_pending;
  std::vector<std::string> new_pending_uids;
  std::size_t demoted = 0;
  // (kRebaseDropDemoted drops the divergent committed work instead.)
  if (!mutant_enabled(ProtocolMutant::kRebaseDropDemoted)) {
    for (std::size_t i = 0; i < history_.size(); ++i) {
      if (decided.contains(history_uids_[i])) continue;
      new_pending.push_back(history_[i]);
      new_pending_uids.push_back(history_uids_[i]);
      ++demoted;
    }
  }
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (decided.contains(pending_uids_[i])) continue;
    new_pending.push_back(pending_[i]);
    new_pending_uids.push_back(pending_uids_[i]);
  }

  committed_ = std::move(replay);
  // Bump past the current epoch so the decided lineage dominates whatever
  // this node gossips next; the commitment layer keeps all deciders
  // consistent, so competing bumps converge on the same prefix.
  epoch_ += 1;
  history_.assign(actions.begin(), actions.end());
  history_uids_ = uids;
  pending_ = std::move(new_pending);
  pending_uids_ = std::move(new_pending_uids);
  stable_ = history_uids_.size();
  stats_.demotions += demoted;
  rebuild_tentative();
  return true;
}

void GossipNode::adopt_merge(Universe merged, std::vector<ActionPtr> schedule,
                             std::vector<std::string> schedule_uids,
                             std::uint64_t sender_epoch) {
  committed_ = std::move(merged);
  // The +1 is what makes a merged state dominate both inputs.
  // (kMergeEpochNoBump forgets it: the merge then ties its inputs' epoch
  // and fingerprint order arbitrates — commit-order catches the fallout.)
  epoch_ = std::max(epoch_, sender_epoch) +
           (mutant_enabled(ProtocolMutant::kMergeEpochNoBump) ? 0 : 1);

  std::unordered_set<std::string> committed_uids(schedule_uids.begin(),
                                                 schedule_uids.end());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    history_.push_back(std::move(schedule[i]));
    history_uids_.push_back(std::move(schedule_uids[i]));
  }

  // Locally pending actions the merge committed leave the pending log;
  // ones the search dropped stay pending and are re-offered later.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (committed_uids.contains(pending_uids_[i])) continue;
    pending_[kept] = std::move(pending_[i]);
    pending_uids_[kept] = std::move(pending_uids_[i]);
    ++kept;
  }
  pending_.resize(kept);
  pending_uids_.resize(kept);

  rebuild_tentative();
  ++stats_.merges;
}

void GossipNode::rebuild_tentative() {
  tentative_ = committed_;
  for (const ActionPtr& action : pending_) {
    if (!action->precondition(tentative_)) continue;
    Universe shadow = tentative_;
    if (action->execute(shadow)) tentative_ = std::move(shadow);
  }
}

bool GossipNode::uid_known(const std::string& uid) const {
  return std::find(history_uids_.begin(), history_uids_.end(), uid) !=
             history_uids_.end() ||
         std::find(pending_uids_.begin(), pending_uids_.end(), uid) !=
             pending_uids_.end();
}

bool gossip_converged(const std::vector<GossipNode>& nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].committed_fingerprint_hash() !=
        nodes[0].committed_fingerprint_hash()) {
      return false;
    }
  }
  return true;
}

}  // namespace icecube
