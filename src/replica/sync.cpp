#include "replica/sync.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>

#include "serialize/log_codec.hpp"

namespace icecube {

SyncResult synchronise(const std::vector<Site*>& sites,
                       const ReconcilerOptions& options, Policy* policy) {
  SyncResult out;
  if (sites.empty()) {
    out.error = {SyncErrorKind::kNoSites, {}, {}};
    return out;
  }
  // A group of one has nobody to reconcile with; reporting success would
  // let callers mistake a no-op for a completed round.
  if (sites.size() < 2) {
    out.error = {SyncErrorKind::kNoSites, sites.front()->name(),
                 "group needs at least two sites"};
    return out;
  }

  // Log-based reconciliation replays merged logs against the common initial
  // state; a divergent committed state means a previous round was missed.
  // Local equality check: the cached 64-bit digest stands in for the full
  // fingerprint string (collisions ~2⁻⁶⁴, accepted).
  const std::uint64_t reference =
      sites.front()->committed().fingerprint_hash();
  for (const Site* site : sites) {
    if (site->committed().fingerprint_hash() != reference) {
      out.error = {SyncErrorKind::kDivergentState, site->name(),
                   "does not match site '" + sites.front()->name() + "'"};
      return out;
    }
  }

  std::vector<Log> logs;
  logs.reserve(sites.size());
  for (const Site* site : sites) logs.push_back(site->log());

  Reconciler reconciler(sites.front()->committed(), std::move(logs), options,
                        policy);
  out.reconcile = reconciler.run();
  if (!out.reconcile.found_any()) {
    out.error = {SyncErrorKind::kNoOutcome, {}, {}};
    return out;
  }

  // An empty best schedule with non-empty inputs means every offered
  // action aborted — flag it so callers can tell a semantic stall from an
  // idle round with genuinely nothing to merge.
  if (out.reconcile.best().schedule.empty()) {
    for (const Site* site : sites) {
      if (!site->log().empty()) {
        out.all_aborted = true;
        break;
      }
    }
  }

  const Universe& merged = out.reconcile.best().final_state;
  for (Site* site : sites) site->adopt(merged);
  out.adopted = true;
  return out;
}

namespace {

/// Protocol-internal bookkeeping for one site.
struct SiteState {
  Site* site = nullptr;
  SiteReport report;
  bool synced = false;
  bool permanent = false;        ///< non-retryable (divergent state)
  std::size_t next_attempt = 0;  ///< earliest round allowed to retry
  std::size_t backoff = 1;       ///< current wait, in rounds
};

/// A decoded log may carry targets outside the universe — hostile or stale
/// input the constraint builder must never see.
std::optional<std::string> out_of_range_target(const Log& log,
                                               std::size_t universe_size) {
  for (const auto& action : log) {
    for (ObjectId target : action->targets()) {
      if (target.index() >= universe_size) {
        return "target " + std::to_string(target.value()) +
               " outside universe of size " + std::to_string(universe_size);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

SyncReport synchronise_resilient(const std::vector<Site*>& sites,
                                 const ReconcilerOptions& options,
                                 Policy* policy, FaultPlan* faults,
                                 const SyncConfig& config) {
  SyncReport report;
  if (sites.empty()) {
    report.errors.push_back({SyncErrorKind::kNoSites, {}, {}});
    return report;
  }
  if (sites.size() < 2) {
    report.errors.push_back({SyncErrorKind::kNoSites, sites.front()->name(),
                             "group needs at least two sites"});
    report.sites.push_back(
        {sites.front()->name(), false, 0, 0, report.errors.back()});
    return report;
  }

  // The protocol's anchor: the common committed state at entry. Every
  // reconciliation replays from here, with already-adopted actions carried
  // forward in `history`, so late-recovering sites stay mergeable.
  const Universe base = sites.front()->committed();
  const std::uint64_t reference = base.fingerprint_hash();

  std::vector<SiteState> states(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    states[i].site = sites[i];
    states[i].report.site = sites[i]->name();
    states[i].backoff = std::max<std::size_t>(1, config.base_backoff_rounds);
    if (sites[i]->committed().fingerprint_hash() != reference) {
      // Not retryable: its log replays from a different state.
      states[i].permanent = true;
      states[i].report.last_error = {
          SyncErrorKind::kDivergentState, sites[i]->name(),
          "does not match site '" + sites.front()->name() + "'"};
      report.errors.push_back(states[i].report.last_error);
    }
  }

  const ActionRegistry registry = ActionRegistry::with_builtins();
  Log history("history");
  std::vector<Site*> adopters;

  const auto quarantine = [&](SiteState& state, std::size_t round,
                              SyncErrorKind kind, std::string detail) {
    state.report.quarantines += 1;
    state.report.last_error = {kind, state.site->name(), std::move(detail)};
    report.errors.push_back(state.report.last_error);
    state.next_attempt = round + 1 + state.backoff;
    state.backoff = std::min(state.backoff * 2,
                             std::max<std::size_t>(1, config.max_backoff_rounds));
  };

  const std::size_t max_rounds = std::max<std::size_t>(1, config.max_rounds);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const bool any_pending =
        std::any_of(states.begin(), states.end(), [](const SiteState& s) {
          return !s.synced && !s.permanent;
        });
    if (!any_pending) break;
    report.rounds = round + 1;

    // Gather this round's participants: ship, validate, quarantine.
    std::vector<SiteState*> participants;
    std::vector<Log> shipped;
    for (SiteState& state : states) {
      if (state.synced || state.permanent || state.next_attempt > round) {
        continue;
      }
      state.report.attempts += 1;
      const std::string& name = state.site->name();

      if (faults != nullptr && faults->site_down(name, round)) {
        quarantine(state, round, SyncErrorKind::kUnreachable, {});
        continue;
      }

      if (!config.ship_logs) {
        participants.push_back(&state);
        shipped.push_back(state.site->log());
        continue;
      }

      std::string payload = encode_log(state.site->log());
      if (faults != nullptr) {
        if (faults->delivery_fails(name, round)) {
          quarantine(state, round, SyncErrorKind::kDeliveryFailed, {});
          continue;
        }
        payload = faults->ship(FaultPoint::kShipLog, name, round,
                               std::move(payload));
      }
      DecodedLog decoded = decode_log(payload, registry);
      if (!decoded.ok()) {
        quarantine(state, round, SyncErrorKind::kDecodeFailed,
                   decoded.error.message());
        continue;
      }
      if (auto bad = out_of_range_target(*decoded.log, base.size())) {
        quarantine(state, round, SyncErrorKind::kDecodeFailed,
                   std::move(*bad));
        continue;
      }
      participants.push_back(&state);
      shipped.push_back(std::move(*decoded.log));
    }

    if (participants.empty()) continue;

    // Reconcile history + the healthy subset from the anchor state.
    std::vector<Log> logs;
    logs.reserve(shipped.size() + 1);
    if (!history.empty()) logs.push_back(history);
    for (Log& log : shipped) logs.push_back(std::move(log));

    Reconciler reconciler(base, std::move(logs), options, policy);
    ReconcileResult result = reconciler.run();
    if (!result.found_any()) {
      // Group-level failure: every participant retries under backoff.
      for (SiteState* state : participants) {
        quarantine(*state, round, SyncErrorKind::kNoOutcome, {});
      }
      continue;
    }

    const Outcome& best = result.best();
    const Universe merged = best.final_state;

    // Same distinction as the single-round API: actions offered, none
    // committed — record the stall instead of letting it read as idle.
    if (best.schedule.empty() && !reconciler.records().empty()) {
      report.all_aborted = true;
      report.errors.push_back({SyncErrorKind::kAllAborted, {},
                               "round " + std::to_string(round)});
    }

    // The adopted schedule becomes the new history (replayable from base).
    Log new_history("history");
    for (ActionId id : best.schedule) {
      new_history.append(reconciler.records()[id.index()].action);
    }
    history = std::move(new_history);

    report.degraded = report.degraded || result.degraded;
    report.adopted = true;
    report.reconcile = std::move(result);

    for (SiteState* state : participants) {
      state->site->adopt(merged);
      state->synced = true;
      state->report.synced = true;
    }
    for (Site* site : adopters) site->adopt(merged);
    for (SiteState* state : participants) adopters.push_back(state->site);
  }

  report.all_synced = true;
  for (SiteState& state : states) {
    if (!state.synced) {
      report.all_synced = false;
      if (!state.permanent) {
        state.report.last_error = {SyncErrorKind::kRoundsExhausted,
                                   state.site->name(),
                                   state.report.last_error.ok()
                                       ? std::string{}
                                       : "last: " +
                                             state.report.last_error
                                                 .message()};
        report.errors.push_back(state.report.last_error);
      }
    }
    report.sites.push_back(std::move(state.report));
  }
  return report;
}

bool converged(const std::vector<Site*>& sites) {
  if (sites.empty()) return true;
  const std::uint64_t reference = sites.front()->tentative().fingerprint_hash();
  for (const Site* site : sites) {
    if (site->tentative().fingerprint_hash() != reference) return false;
  }
  return true;
}

}  // namespace icecube
