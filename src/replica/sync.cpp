#include "replica/sync.hpp"

#include <cassert>

namespace icecube {

SyncResult synchronise(const std::vector<Site*>& sites,
                       const ReconcilerOptions& options, Policy* policy) {
  SyncResult out;
  assert(!sites.empty());

  // Log-based reconciliation replays merged logs against the common initial
  // state; a divergent committed state means a previous round was missed.
  const std::string reference = sites.front()->committed().fingerprint();
  for (const Site* site : sites) {
    if (site->committed().fingerprint() != reference) {
      out.error = "sites '" + sites.front()->name() + "' and '" +
                  site->name() + "' do not share a committed state";
      return out;
    }
  }

  std::vector<Log> logs;
  logs.reserve(sites.size());
  for (const Site* site : sites) logs.push_back(site->log());

  Reconciler reconciler(sites.front()->committed(), std::move(logs), options,
                        policy);
  out.reconcile = reconciler.run();
  if (!out.reconcile.found_any()) {
    out.error = "reconciliation produced no outcome";
    return out;
  }

  const Universe& merged = out.reconcile.best().final_state;
  for (Site* site : sites) site->adopt(merged);
  out.adopted = true;
  return out;
}

bool converged(const std::vector<Site*>& sites) {
  if (sites.empty()) return true;
  const std::string reference = sites.front()->tentative().fingerprint();
  for (const Site* site : sites) {
    if (site->tentative().fingerprint() != reference) return false;
  }
  return true;
}

}  // namespace icecube
