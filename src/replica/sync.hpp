// The reconciliation phase across sites (§2.1), hardened for real networks.
//
// "During the reconciliation phase, the logs of two or more replicas are
// merged to bring the replicas to a consistent state."
//
// The paper deliberately ignores distribution ("this paper focuses on our
// approach to reconciliation at a single site"); this module supplies the
// group-synchronisation workflow a deployment needs on top. Two entry
// points:
//
//  - `synchronise` — the original single-round primitive: gather the logs
//    of a group of sites sharing a committed state, reconcile once, have
//    every participant adopt the best outcome.
//
//  - `synchronise_resilient` — a multi-round protocol for unreliable
//    conditions. Each round, every unsynced site *ships* its log through
//    the serialise codec (optionally through a fault-injecting channel);
//    sites whose payloads fail to decode, fail CRC validation, carry
//    out-of-range targets, or whose committed fingerprint diverges are
//    *quarantined* with a structured `SyncError` and retried later under
//    capped exponential backoff. The healthy subset reconciles and adopts;
//    adopted actions accumulate in a history log so late-recovering sites
//    can still be merged against the original common state. If the search
//    budget exhausts, the reconciler's degraded fallback keeps the round
//    productive (`SyncReport::degraded`).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/options.hpp"
#include "core/policy.hpp"
#include "core/reconciler.hpp"
#include "fault/fault_plan.hpp"
#include "replica/site.hpp"

namespace icecube {

/// Why a site (or a whole round) could not synchronise.
enum class SyncErrorKind : std::uint8_t {
  kNone,            ///< no error
  kNoSites,         ///< empty group
  kDivergentState,  ///< committed fingerprint differs from the group's
  kUnreachable,     ///< site down for the round (crash fault)
  kDeliveryFailed,  ///< log payload lost in transit
  kDecodeFailed,    ///< payload arrived but failed decode/validation
  kNoOutcome,       ///< reconciliation produced no outcome at all
  kRoundsExhausted, ///< retry budget ran out with sites still unsynced
  kAllAborted,      ///< outcomes existed, but the best aborted every action
};

[[nodiscard]] constexpr std::string_view to_string(SyncErrorKind kind) {
  switch (kind) {
    case SyncErrorKind::kNone:
      return "ok";
    case SyncErrorKind::kNoSites:
      return "no sites";
    case SyncErrorKind::kDivergentState:
      return "divergent committed state";
    case SyncErrorKind::kUnreachable:
      return "site unreachable";
    case SyncErrorKind::kDeliveryFailed:
      return "delivery failed";
    case SyncErrorKind::kDecodeFailed:
      return "log decode failed";
    case SyncErrorKind::kNoOutcome:
      return "reconciliation produced no outcome";
    case SyncErrorKind::kRoundsExhausted:
      return "retry rounds exhausted";
    case SyncErrorKind::kAllAborted:
      return "best schedule aborted every action";
  }
  return "?";
}

/// One structured failure: what, which site, and detail (e.g. the decode
/// error message). Replaces the previous bare `std::string error`.
struct SyncError {
  SyncErrorKind kind = SyncErrorKind::kNone;
  std::string site;    ///< offending site; empty for group-level errors
  std::string detail;  ///< human-readable specifics

  [[nodiscard]] bool ok() const { return kind == SyncErrorKind::kNone; }
  /// Mirrors the old string convention: empty iff no error.
  [[nodiscard]] bool empty() const { return ok(); }
  /// Transport-level faults are retryable; semantic divergence is not.
  [[nodiscard]] bool transient() const {
    return kind == SyncErrorKind::kUnreachable ||
           kind == SyncErrorKind::kDeliveryFailed ||
           kind == SyncErrorKind::kDecodeFailed;
  }

  [[nodiscard]] std::string message() const {
    std::string out{to_string(kind)};
    if (!site.empty()) out += " [site '" + site + "']";
    if (!detail.empty()) out += ": " + detail;
    return out;
  }
};

inline std::ostream& operator<<(std::ostream& os, const SyncError& error) {
  return os << error.message();
}

/// Result of one group synchronisation round (legacy single-round API).
struct SyncResult {
  /// Full reconciliation output (outcomes, stats, cutsets). Unset fields if
  /// the round was rejected before searching (`error` non-empty).
  ReconcileResult reconcile;
  /// True iff a best outcome existed and all sites adopted it.
  bool adopted = false;
  /// True iff actions were offered but the adopted best schedule committed
  /// none of them — every candidate aborted. Distinct from an idle round
  /// (empty logs): this is a semantic stall worth surfacing, not a no-op.
  bool all_aborted = false;
  /// kind != kNone when the round could not run (e.g. divergent committed
  /// states).
  SyncError error;
};

/// Reconciles the logs of `sites` from their shared committed state and, if
/// an outcome was found, installs its final state at every site (clearing
/// their logs). `sites` needs at least two members (a group of one has
/// nothing to reconcile with — reported as kNoSites, never as silent
/// success); sites without local updates simply adopt the merged result.
[[nodiscard]] SyncResult synchronise(const std::vector<Site*>& sites,
                                     const ReconcilerOptions& options = {},
                                     Policy* policy = nullptr);

/// Retry/backoff knobs for the multi-round protocol.
struct SyncConfig {
  /// Hard cap on protocol rounds (>= 1).
  std::size_t max_rounds = 8;
  /// First retry waits this many rounds; each further failure doubles the
  /// wait, capped at `max_backoff_rounds`.
  std::size_t base_backoff_rounds = 1;
  std::size_t max_backoff_rounds = 4;
  /// Ship logs through the serialise codec (CRC validation, fault channel).
  /// With false, logs are taken by reference — no transport, no transport
  /// faults.
  bool ship_logs = true;
};

/// Per-site record of how the protocol treated one site.
struct SiteReport {
  std::string site;
  bool synced = false;          ///< merged and adopted in some round
  std::size_t attempts = 0;     ///< rounds in which a merge was attempted
  std::size_t quarantines = 0;  ///< times the site was quarantined
  SyncError last_error;         ///< kind == kNone if it never failed
};

/// Result of a full multi-round synchronisation.
struct SyncReport {
  /// Output of the last reconciliation that ran (the final merged state).
  ReconcileResult reconcile;
  /// True iff at least one round reconciled and its participants adopted.
  bool adopted = false;
  /// True iff every site ended the protocol synced.
  bool all_synced = false;
  /// True iff any round's reconciliation degraded to the greedy fallback.
  bool degraded = false;
  /// True iff any round offered actions yet adopted an empty schedule
  /// (every candidate aborted); each such round also records a
  /// kAllAborted entry in `errors`.
  bool all_aborted = false;
  std::size_t rounds = 0;  ///< rounds actually executed
  std::vector<SiteReport> sites;
  /// Every failure observed, in order (quarantines, losses, exhaustion).
  std::vector<SyncError> errors;

  /// The report for `site`, or nullptr.
  [[nodiscard]] const SiteReport* site_report(std::string_view site) const {
    for (const auto& s : sites) {
      if (s.site == site) return &s;
    }
    return nullptr;
  }
};

/// Multi-round fault-tolerant synchronisation; see file comment. `faults`
/// may be null (perfect network). Needs at least two sites (kNoSites
/// otherwise); a run whose every round finds all sites crashed ends with a
/// structured kRoundsExhausted error per site, not a silent success. Sites
/// left unsynced keep their committed state and pending log untouched —
/// safe to retry with a later call.
[[nodiscard]] SyncReport synchronise_resilient(
    const std::vector<Site*>& sites, const ReconcilerOptions& options = {},
    Policy* policy = nullptr, FaultPlan* faults = nullptr,
    const SyncConfig& config = {});

/// True iff all sites currently report the same tentative state.
/// Vacuously true for empty and single-site groups — callers that need
/// "the group actually synchronised" must check SyncReport::all_synced.
[[nodiscard]] bool converged(const std::vector<Site*>& sites);

}  // namespace icecube
