// The reconciliation phase across sites (§2.1).
//
// "During the reconciliation phase, the logs of two or more replicas are
// merged to bring the replicas to a consistent state."
//
// `synchronise` gathers the logs of a group of sites that share a committed
// state, runs one IceCube reconciliation over them, and — on success — has
// every participant adopt the best outcome. Log-based reconciliation is
// only meaningful from a *common* initial state, so the group's committed
// fingerprints are verified first.
//
// The paper deliberately ignores distribution ("this paper focuses on our
// approach to reconciliation at a single site"); this module supplies the
// minimal group-synchronisation workflow a deployment needs on top, and
// documents its one structural requirement (common committed state) rather
// than hiding it.
#pragma once

#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/policy.hpp"
#include "core/reconciler.hpp"
#include "replica/site.hpp"

namespace icecube {

/// Result of one group synchronisation round.
struct SyncResult {
  /// Full reconciliation output (outcomes, stats, cutsets). Unset fields if
  /// the round was rejected before searching (`error` non-empty).
  ReconcileResult reconcile;
  /// True iff a best outcome existed and all sites adopted it.
  bool adopted = false;
  /// Non-empty when the round could not run (e.g. divergent committed
  /// states).
  std::string error;
};

/// Reconciles the logs of `sites` from their shared committed state and, if
/// an outcome was found, installs its final state at every site (clearing
/// their logs). `sites` must be non-empty; sites without local updates
/// simply adopt the merged result.
[[nodiscard]] SyncResult synchronise(const std::vector<Site*>& sites,
                                     const ReconcilerOptions& options = {},
                                     Policy* policy = nullptr);

/// True iff all sites currently report the same tentative state.
[[nodiscard]] bool converged(const std::vector<Site*>& sites);

}  // namespace icecube
