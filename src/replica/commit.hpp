// Decentralised asynchronous commitment — agreement without a primary.
//
// The gossip layer (replica/gossip.hpp) makes replicas *share* state: its
// epoch-chain dominance is a total order any site can win, so nothing is
// ever irrevocable — a partitioned majority can be overturned later by a
// longer lineage, and the (implicit) leading site is a single point of
// failure, exactly the primary-commit flavour IceCube inherited. This
// module adds the missing property, in the style of Sutra & Shapiro's
// asynchronous decentralised commitment: schedule prefixes become *stable*
// (irrevocable, everywhere, forever) by election, with no site whose
// failure can block or revoke a decision.
//
// Protocol sketch. Commitment *knowledge* is a grow-only set of two
// immutable record kinds:
//
//   proposal — a site's full committed history from genesis (uids +
//     encoded actions + claimed fingerprint), content-addressed by hash;
//   vote — "<voter> endorses <proposal-id> in (election, runoff)". A
//     correct site casts at most one vote per (election, runoff), keeps it
//     durably, and re-announces it wholesale after a crash.
//
// Frames carry a site's entire knowledge, so receiving one is a set
// union: message loss, reordering and duplication are harmless, and any
// two sites that exchange frames end with the same knowledge. Elections
// are sequential (election k picks the k-th decided prefix, which must
// strictly extend the (k-1)-th). Within an election:
//
//   decide X at runoff r  iff  among the runoff-r votes heard,
//       tally(X) > tally(Y) + unheard   for every competing Y, and
//       tally(X) > unheard
//   where unheard = members - voters heard. Any X that satisfies this
//   wins a strict plurality of the *complete* runoff-r tally no matter
//   how the unheard sites voted — so two sites can never derive different
//   decisions for the same election, and more knowledge can only confirm
//   a decision, never retract it (decisions are monotone in knowledge).
//
//   runoff r+1 opens only on *provable* stuckness: all `members` votes at
//   runoff r are heard and no strict-plurality winner exists — a global,
//   permanent fact, mutually exclusive with any decision at r. The
//   runoff-(r+1) vote is a deterministic function of the complete
//   runoff-r vote set (max by (tally, id)), identical at every site, so
//   the next runoff is unanimous and decides.
//
// A decision is applied to the gossip node underneath: if the node's
// history already extends the decided prefix it is simply marked stable
// (GossipNode::set_stable_prefix); otherwise the node *rebases* — replays
// the decided prefix from genesis, demotes its divergent committed work
// to pending (never dropped), and continues from there. The gossip
// stable-prefix guard (GossipReject::kStableConflict) then refuses any
// state transfer that would rewrite a decided prefix, closing the loop:
// dominance arbitrates *tentative* lineages, elections make them
// *irrevocable*.
//
// Failure model: crash/recovery, arbitrary partitions, message loss,
// reordering, duplication, and corruption (rejected whole by the codec's
// CRC + seed-keyed auth + content hashes). Not Byzantine: a site that
// *equivocates* (two votes in one runoff) is outside the model and is
// what the vote-uniqueness invariant (simnet/invariants.hpp) detects.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "fault/fault_plan.hpp"
#include "replica/gossip.hpp"
#include "serialize/commit_codec.hpp"
#include "serialize/decode_error.hpp"

namespace icecube {

/// Knobs for one site's commitment engine.
struct CommitOptions {
  /// Replay every candidate proposal from genesis before voting for or
  /// deciding on it, rejecting fingerprint liars. Cheap insurance, same
  /// spirit as GossipOptions::verify_transfers.
  bool verify_proposals = true;
  /// Cluster authentication seed; frames from a different seed fail
  /// decode (see commit_codec.hpp).
  std::uint64_t auth_seed = 0;
};

/// Lifetime counters, for reports and benches.
struct CommitStats {
  std::size_t proposals_made = 0;  ///< own proposals added to knowledge
  std::size_t votes_cast = 0;      ///< own votes (all runoffs)
  std::size_t runoff_votes = 0;    ///< own votes at runoff >= 1
  std::size_t decisions = 0;       ///< elections decided locally
  std::size_t fast_forwards = 0;   ///< decisions applied by marking stable
  std::size_t rebases = 0;         ///< decisions applied by rebasing
  std::size_t rebase_failures = 0; ///< decided prefix failed to replay
  std::size_t frames_received = 0;
  std::size_t quarantines = 0;     ///< frames rejected whole
  std::size_t records_learned = 0; ///< proposals + votes unioned in
};

/// What one received commitment frame did to the engine.
struct CommitReceipt {
  bool quarantined = false;  ///< frame rejected, engine untouched
  DecodeError error;         ///< decode detail when quarantined
  std::size_t new_proposals = 0;
  std::size_t new_votes = 0;
  std::size_t new_decisions = 0;  ///< elections decided by this frame
  /// True iff the sender is missing knowledge or decisions this engine
  /// has — an immediate reply would teach it something.
  bool reply_advised = false;

  [[nodiscard]] bool learned() const {
    return new_proposals + new_votes > 0;
  }
};

/// Identifies one vote slot; a correct voter fills it at most once.
struct CommitVoteKey {
  std::uint64_t election = 0;
  std::uint32_t runoff = 0;
  std::string voter;

  [[nodiscard]] bool operator<(const CommitVoteKey& other) const {
    if (election != other.election) return election < other.election;
    if (runoff != other.runoff) return runoff < other.runoff;
    return voter < other.voter;
  }
};

/// One known proposal with its decoded actions and cached validity.
struct CommitProposalEntry {
  CommitProposal proposal;
  std::vector<ActionPtr> actions;  ///< decoded log (empty if undecodable)
  bool decodable = false;          ///< log decoded and matches uid count
  /// Validity for its election: -1 unevaluated, 0 invalid, 1 valid.
  /// Evaluated only once the previous election is decided (the context
  /// is then immutable), so the cache never goes stale.
  int valid = -1;
};

/// The per-site commitment engine; see file comment. Owns no replica
/// state of its own beyond knowledge and decisions — the schedule lives
/// in the `GossipNode` it drives, which must outlive the engine.
class CommitEngine {
 public:
  CommitEngine(GossipNode& node, std::size_t members,
               CommitOptions options = {});

  /// Copy-with-rebind: duplicates `other`'s entire state (knowledge,
  /// decisions, stats, frame cache) but drives `node` — the forked copy of
  /// `other`'s node in a model-checker world clone (src/mc/world.hpp).
  /// `node` must carry the same site name as `other`'s node.
  CommitEngine(const CommitEngine& other, GossipNode& node);

  [[nodiscard]] const std::string& site() const { return node_.name(); }
  [[nodiscard]] const GossipNode& node() const { return node_; }
  [[nodiscard]] std::size_t members() const { return members_; }
  [[nodiscard]] const CommitStats& stats() const { return stats_; }

  /// Number of elections decided (the frame's `stable_height`).
  [[nodiscard]] std::uint64_t stable_height() const {
    return decided_.size();
  }
  /// Decided proposal ids, in election order.
  [[nodiscard]] const std::vector<std::string>& decided() const {
    return decided_;
  }
  /// The uids of the latest decided prefix — the irrevocable schedule.
  [[nodiscard]] const std::vector<std::string>& stable_uids() const {
    return stable_uids_;
  }

  /// Full knowledge, for invariant checkers and tests.
  [[nodiscard]] const std::map<std::string, CommitProposalEntry>& proposals()
      const {
    return proposals_;
  }
  /// Votes heard, keyed by slot. A slot set with more than one id is an
  /// equivocation — kept (grow-only), tallied as the minimal id, and
  /// flagged by the vote-uniqueness invariant.
  [[nodiscard]] const std::map<CommitVoteKey, std::set<std::string>>& votes()
      const {
    return votes_;
  }

  /// Drives the engine one step: derives any decisions the current
  /// knowledge supports, applies them to the node, proposes the node's
  /// uncommitted-beyond-stable history at the frontier election, and
  /// casts any vote the rules allow. Returns the number of elections
  /// decided by this call. Idempotent once knowledge is exhausted.
  std::size_t tick();

  /// Builds this site's commitment frame (its whole knowledge). With
  /// `faults`, the payload travels FaultPoint::kShipCommit, and a
  /// stale-vote fault (FaultPoint::kStaleVote) sends outdated knowledge —
  /// the frame omits every frontier-election record, as a lagging replica
  /// would. The full-knowledge encoding is cached until knowledge grows.
  [[nodiscard]] std::string make_message(FaultPlan* faults = nullptr,
                                         std::size_t time = 0);

  /// Unions one received frame into knowledge (rejected whole on any
  /// decode/auth failure or a member-count mismatch) and ticks.
  CommitReceipt receive(const std::string& message);

 private:
  struct Tally {
    std::map<std::string, std::size_t> counts;  ///< proposal id -> votes
    std::size_t heard = 0;    ///< distinct voters seen in this runoff
    std::size_t unheard = 0;  ///< members - heard
  };

  [[nodiscard]] Tally tally(std::uint64_t election,
                            std::uint32_t runoff) const;
  /// The decision rule; empty if no proposal dominates yet.
  [[nodiscard]] std::string winner(const Tally& t) const;
  /// True iff the runoff is provably stuck (complete and winnerless).
  [[nodiscard]] bool stuck(const Tally& t) const;
  /// Lazily evaluates (and caches) validity for a frontier proposal.
  [[nodiscard]] bool proposal_valid(CommitProposalEntry& entry);
  /// Derives and applies every decision knowledge supports.
  std::size_t derive_decisions();
  void apply_decision(const CommitProposalEntry& entry);
  void add_own_vote(std::uint64_t election, std::uint32_t runoff,
                    const std::string& proposal_id);

  GossipNode& node_;
  std::size_t members_;
  CommitOptions options_;
  ActionRegistry actions_;

  std::map<std::string, CommitProposalEntry> proposals_;
  std::map<CommitVoteKey, std::set<std::string>> votes_;
  std::vector<std::string> decided_;     ///< winning ids, election order
  std::vector<std::string> stable_uids_; ///< uids of the last decision
  CommitStats stats_;

  std::string cached_frame_;  ///< encoded full knowledge
  bool cache_dirty_ = true;
};

/// True iff every engine derived the same decisions and every node's
/// history carries its engine's full stable prefix.
[[nodiscard]] bool commit_converged(const std::vector<CommitEngine>& engines);

}  // namespace icecube
