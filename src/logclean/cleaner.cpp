#include "logclean/cleaner.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace icecube {

namespace {

/// Replays `actions` against a copy of `initial`. Returns the final state's
/// cached 64-bit fingerprint digest (Universe::fingerprint_hash — local
/// equality only, collisions ~2⁻⁶⁴, accepted), or nullopt if any action
/// fails (a clean log must replay in full).
std::optional<std::uint64_t> replay_fingerprint(
    const Universe& initial, const std::vector<ActionPtr>& actions) {
  Universe state = initial;
  for (const auto& action : actions) {
    if (!action->precondition(state)) return std::nullopt;
    if (!action->execute(state)) return std::nullopt;
  }
  return state.fingerprint_hash();
}

/// Generic generate-and-verify cleaner: repeatedly tries to drop candidate
/// index sets proposed by `propose`, keeping a drop iff the shortened log
/// still replays in full to the same final state. Iterates to fixpoint.
///
/// `propose(actions)` returns candidate sets of indices to drop together,
/// cheapest first. Verification makes the cleaner sound regardless of how
/// optimistic the proposals are.
template <typename ProposeFn>
CleanReport clean_by_verification(const Universe& initial, const Log& log,
                                  ProposeFn&& propose) {
  std::vector<ActionPtr> actions;
  for (const auto& a : log) actions.push_back(a);

  CleanReport report;
  const auto reference = replay_fingerprint(initial, actions);
  if (!reference) {
    // Input log does not replay cleanly; return it untouched.
    report.cleaned = log;
    return report;
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<std::size_t>& drop : propose(actions)) {
      std::vector<ActionPtr> candidate;
      candidate.reserve(actions.size());
      for (std::size_t i = 0; i < actions.size(); ++i) {
        bool dropped = false;
        for (std::size_t d : drop) dropped = dropped || d == i;
        if (!dropped) candidate.push_back(actions[i]);
      }
      if (replay_fingerprint(initial, candidate) == reference) {
        report.removed += actions.size() - candidate.size();
        actions = std::move(candidate);
        changed = true;
        break;  // re-propose on the shortened log
      }
    }
  }

  Log cleaned(log.name());
  for (auto& a : actions) cleaned.append(std::move(a));
  report.cleaned = std::move(cleaned);
  return report;
}

bool mentions_piece(const Tag& t, std::int64_t piece) {
  if (t.op == "join") return t.param(0) == piece || t.param(2) == piece;
  return t.param(0) == piece;  // insert / remove
}

}  // namespace

CleanReport clean_jigsaw_log(const Universe& initial, const Log& log) {
  // Candidates: a placement (insert/join) and a later remove that mention a
  // common piece, with preference for adjacent pairs; plus lone
  // place-then-remove of the same piece. Verification rejects unsound drops.
  auto propose = [](const std::vector<ActionPtr>& actions) {
    std::vector<std::vector<std::size_t>> candidates;
    for (std::size_t j = 0; j < actions.size(); ++j) {
      const Tag& tj = actions[j]->tag();
      if (tj.op != "remove") continue;
      const std::int64_t piece = tj.param(0);
      for (std::size_t i = j; i-- > 0;) {  // nearest placement first
        const Tag& ti = actions[i]->tag();
        const bool places = ti.op == "join" || ti.op == "insert" ||
                            ti.op == "insert!";
        if (places && mentions_piece(ti, piece)) {
          candidates.push_back({i, j});
          break;
        }
      }
    }
    return candidates;
  };
  return clean_by_verification(initial, log, propose);
}

CleanReport clean_fs_log(const Universe& initial, const Log& log) {
  // Candidates: drop an earlier write/mkdir whose path is later overwritten
  // or deleted; and mkdir/delete pairs of the same path.
  auto propose = [](const std::vector<ActionPtr>& actions) {
    std::vector<std::vector<std::size_t>> candidates;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      const Tag& ti = actions[i]->tag();
      if (ti.op != "fswrite" && ti.op != "mkdir") continue;
      const std::string& path = ti.str_param(0);
      for (std::size_t j = i + 1; j < actions.size(); ++j) {
        const Tag& tj = actions[j]->tag();
        if (tj.op == "fswrite" && tj.str_param(0) == path) {
          candidates.push_back({i});  // superseded write
          break;
        }
        if (tj.op == "fsdelete" && tj.str_param(0) == path) {
          candidates.push_back({i, j});  // create/delete pair
          break;
        }
      }
    }
    return candidates;
  };
  return clean_by_verification(initial, log, propose);
}

}  // namespace icecube
