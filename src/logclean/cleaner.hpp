// Log cleaning (§4.4).
//
// Semantic constraints work best on "clean" logs — logs where no two actions
// redundantly update the same object. Interactive users change their minds,
// so IceCube proposes cleaning the log after the fact: combining several
// actions from the same log targeting the same object into one. The paper's
// example: join(P1,top,P2,bottom), remove(P2), join(P1,top,P2,bottom)
// reduces to the single final join.
//
// Cleaning must preserve the log's replayed final state; tests enforce this.
#pragma once

#include "core/log.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Statistics from one cleaning pass.
struct CleanReport {
  Log cleaned;
  std::size_t removed = 0;  ///< actions dropped from the input log
};

/// Cleans a jigsaw log: cancels place/remove pairs of the same piece when no
/// intervening action depends on the piece being on the board, iterating to
/// a fixed point. `initial` must contain the board the log was recorded
/// against (it is replayed to attribute piece movements to actions).
[[nodiscard]] CleanReport clean_jigsaw_log(const Universe& initial,
                                           const Log& log);

/// Cleans a file-system log: drops a write to a path that is overwritten by
/// a later write (or deleted) with no intervening dependent action, and
/// collapses mkdir/delete pairs, iterating to a fixed point. `initial` must
/// contain the file system the log was recorded against.
[[nodiscard]] CleanReport clean_fs_log(const Universe& initial, const Log& log);

}  // namespace icecube
