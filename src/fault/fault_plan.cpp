#include "fault/fault_plan.hpp"

#include "util/rng.hpp"

namespace icecube {

namespace {

/// FNV-1a over the key material; folded with the plan seed through
/// SplitMix64 so distinct seeds give unrelated decision streams.
std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t FaultPlan::key(FaultPoint point, std::string_view subject,
                             std::size_t round, std::uint64_t salt) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, static_cast<std::uint64_t>(point));
  h = fnv1a(h, subject);
  h = fnv1a(h, static_cast<std::uint64_t>(round));
  h = fnv1a(h, salt);
  std::uint64_t mix = seed_ ^ h;
  return splitmix64(mix);
}

bool FaultPlan::roll(double p, FaultPoint point, std::string_view subject,
                     std::size_t round, std::uint64_t salt) const {
  if (p <= 0.0) return false;
  Rng rng(key(point, subject, round, salt));
  return rng.chance(p);
}

bool FaultPlan::site_down(std::string_view site, std::size_t round) {
  if (!roll(spec_.site_down, FaultPoint::kSiteCrash, site, round, 1)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kSiteCrash, "drop", std::string(site), round});
  return true;
}

bool FaultPlan::delivery_fails(std::string_view payload_id,
                               std::size_t round) {
  if (!roll(spec_.lose, FaultPoint::kDelivery, payload_id, round, 2)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kDelivery, "lose", std::string(payload_id), round});
  return true;
}

std::size_t FaultPlan::delay(std::string_view payload_id, std::size_t time) {
  std::size_t extra = 0;
  if (spec_.delay_max > 0) {
    Rng rng(key(FaultPoint::kDelivery, payload_id, time, 7));
    extra = rng.below(spec_.delay_max + 1);
  }
  if (roll(spec_.reorder, FaultPoint::kDelivery, payload_id, time, 8)) {
    Rng rng(key(FaultPoint::kDelivery, payload_id, time, 9));
    const std::size_t bound = spec_.reorder_max == 0 ? 1 : spec_.reorder_max;
    extra += 1 + rng.below(bound);
    injected_.push_back(
        {FaultPoint::kDelivery, "reorder", std::string(payload_id), time});
  }
  return extra;
}

bool FaultPlan::duplicates(std::string_view payload_id, std::size_t time) {
  if (!roll(spec_.duplicate, FaultPoint::kDelivery, payload_id, time, 10)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kDelivery, "duplicate", std::string(payload_id), time});
  return true;
}

bool FaultPlan::link_cut(std::string_view a, std::string_view b,
                         std::size_t window) {
  // Canonicalise the undirected link so cut(a, b) == cut(b, a).
  std::string link = a < b ? std::string(a) + "|" + std::string(b)
                           : std::string(b) + "|" + std::string(a);
  if (!roll(spec_.partition, FaultPoint::kDelivery, link, window, 11)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kDelivery, "partition", std::move(link), window});
  return true;
}

bool FaultPlan::vote_dropped(std::string_view site, std::size_t time) {
  if (!roll(spec_.drop_vote, FaultPoint::kDropVote, site, time, 12)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kDropVote, "drop", std::string(site), time});
  return true;
}

bool FaultPlan::vote_stale(std::string_view site, std::size_t time) {
  if (!roll(spec_.stale_vote, FaultPoint::kStaleVote, site, time, 13)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kStaleVote, "stale", std::string(site), time});
  return true;
}

bool FaultPlan::capture_crash(std::size_t flush) {
  if (!roll(spec_.capture_crash, FaultPoint::kCaptureWrite, "capture", flush,
            14)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kCaptureWrite, "crash-write", "capture", flush});
  return true;
}

bool FaultPlan::capture_short_write(std::size_t flush) {
  if (!roll(spec_.capture_short, FaultPoint::kCaptureWrite, "capture", flush,
            15)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kCaptureWrite, "short-write", "capture", flush});
  return true;
}

bool FaultPlan::capture_bit_flip(std::size_t flush) {
  if (!roll(spec_.capture_flip, FaultPoint::kCaptureWrite, "capture", flush,
            16)) {
    return false;
  }
  injected_.push_back(
      {FaultPoint::kCaptureWrite, "flip", "capture", flush});
  return true;
}

std::size_t FaultPlan::capture_cut(std::size_t flush, std::size_t len) const {
  Rng rng(key(FaultPoint::kCaptureWrite, "capture", flush, 17));
  return rng.below(len);
}

std::string FaultPlan::ship(FaultPoint point, std::string_view subject,
                            std::size_t round, std::string payload) {
  if (payload.empty()) return payload;

  if (roll(spec_.truncate, point, subject, round, 3)) {
    Rng rng(key(point, subject, round, 4));
    // Cut to a strict prefix (possibly empty) — always shorter.
    payload.resize(rng.below(payload.size()));
    injected_.push_back({point, "truncate", std::string(subject), round});
    return payload;
  }

  if (roll(spec_.corrupt, point, subject, round, 5)) {
    Rng rng(key(point, subject, round, 6));
    const std::size_t bound =
        spec_.max_corrupt_bytes == 0 ? 1 : spec_.max_corrupt_bytes;
    const std::size_t flips = 1 + rng.below(bound);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t pos = rng.below(payload.size());
      // XOR with a nonzero mask: the byte is guaranteed to change.
      const auto mask = static_cast<unsigned char>(1 + rng.below(255));
      payload[pos] = static_cast<char>(
          static_cast<unsigned char>(payload[pos]) ^ mask);
    }
    injected_.push_back({point, "corrupt", std::string(subject), round});
  }
  return payload;
}

}  // namespace icecube
