// Deterministic, seed-driven fault injection for distributed-sync tests.
//
// Reconciliation is distributed in practice: logs are shipped between
// sites, sites crash mid-round, deliveries are lost. Reproducing those
// failures in tests requires *determinism* — a failing seed must replay the
// identical scenario. A `FaultPlan` is a pure function of (seed, injection
// point, subject, round): every decision is derived from a keyed hash, so
// the answer does not depend on the order in which callers ask, and an
// entire multi-round synchronisation is reproducible from one integer.
//
// Injection points:
//   - `site_down`        — the site is unreachable this round (crash model)
//   - `delivery_fails`   — a shipped payload is lost outright
//   - `ship`             — a payload arrives, possibly corrupted/truncated
//
// Every injected fault is recorded (`injected()`), so tests can assert that
// the codec detected exactly the payloads the plan damaged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace icecube {

/// Where in the sync protocol a fault fires.
enum class FaultPoint : std::uint8_t {
  kShipLog,       ///< log payload in transit to the reconciler
  kShipUniverse,  ///< state-transfer payload in transit
  kDelivery,      ///< payload delivery (loss, not damage)
  kSiteCrash,     ///< site unavailable for the round
  kShipCommit,    ///< commitment frame in transit
  kDropVote,      ///< commitment frame withheld by the sender
  kStaleVote,     ///< sender announces outdated commitment knowledge
  kCaptureWrite,  ///< capture-log flush torn by a crash / short write / flip
};

[[nodiscard]] constexpr std::string_view to_string(FaultPoint point) {
  switch (point) {
    case FaultPoint::kShipLog:
      return "ship-log";
    case FaultPoint::kShipUniverse:
      return "ship-universe";
    case FaultPoint::kDelivery:
      return "delivery";
    case FaultPoint::kSiteCrash:
      return "site-crash";
    case FaultPoint::kShipCommit:
      return "ship-commit";
    case FaultPoint::kDropVote:
      return "drop-vote";
    case FaultPoint::kStaleVote:
      return "stale-vote";
    case FaultPoint::kCaptureWrite:
      return "capture-write";
  }
  return "?";
}

/// Per-scenario fault probabilities. All default to 0 (a perfect network).
struct FaultSpec {
  double corrupt = 0.0;   ///< P(shipped payload has bytes flipped)
  double truncate = 0.0;  ///< P(shipped payload is cut short)
  double site_down = 0.0; ///< P(site unreachable in a given round)
  double lose = 0.0;      ///< P(delivery fails outright)
  /// Upper bound on flipped bytes per corruption (>= 1).
  std::size_t max_corrupt_bytes = 4;

  // --- asynchronous-network knobs (used by simnet's discrete-event model;
  // all default to "no effect" so the synchronous protocol is unchanged) ---
  /// Maximum *extra* delivery delay in logical ticks; every message gets a
  /// uniform extra delay in [0, delay_max] on top of the base latency.
  std::size_t delay_max = 0;
  /// P(a message additionally gets a reordering bump of up to
  /// `reorder_max` extra ticks, overtaking later traffic).
  double reorder = 0.0;
  std::size_t reorder_max = 8;
  /// P(a delivered message arrives twice, the copy independently delayed).
  double duplicate = 0.0;
  /// P(a given undirected link is cut for a given partition window).
  double partition = 0.0;

  // --- commitment-protocol knobs (used by the commit engine) ---
  /// P(a site withholds its commitment frame for a given send slot).
  double drop_vote = 0.0;
  /// P(a site announces stale knowledge — its frame omits the records of
  /// the election currently in progress, as a lagging replica would).
  double stale_vote = 0.0;

  // --- capture-write knobs (used by the wire-log writer; see
  // capture/wire_log_writer.hpp for the failure semantics of each) ---
  /// P(a given capture flush crashes mid-write: prefix lands, writer dies).
  double capture_crash = 0.0;
  /// P(a given capture flush is cut short but the writer keeps going).
  double capture_short = 0.0;
  /// P(one byte of a given capture flush is bit-flipped on the way down).
  double capture_flip = 0.0;
};

/// One fault the plan actually injected, for test introspection.
struct InjectedFault {
  FaultPoint point;
  std::string kind;     ///< "corrupt" | "truncate" | "drop" | "lose" |
                        ///< "reorder" | "duplicate" | "partition"
  std::string subject;  ///< site, link or payload name
  std::size_t round = 0;
};

/// Deterministic fault oracle; see file comment.
class FaultPlan {
 public:
  /// A plan that never injects anything (useful as a default).
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, FaultSpec spec) : seed_(seed), spec_(spec) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// True iff `site` is unreachable in `round`. Records a "drop" fault.
  [[nodiscard]] bool site_down(std::string_view site, std::size_t round);

  /// True iff the delivery of `payload_id` fails in `round` ("lose").
  [[nodiscard]] bool delivery_fails(std::string_view payload_id,
                                    std::size_t round);

  /// Passes `payload` through the faulty channel: returns it unchanged, or
  /// with deterministically chosen bytes flipped (corruption) or a prefix
  /// cut (truncation). Any damage is guaranteed to alter the bytes and is
  /// recorded.
  [[nodiscard]] std::string ship(FaultPoint point, std::string_view subject,
                                 std::size_t round, std::string payload);

  /// Extra delivery delay (in ticks) for `payload_id` sent at `time`:
  /// uniform in [0, delay_max], plus — with probability `reorder` — a
  /// reordering bump in [1, reorder_max] (recorded as "reorder"). Plain
  /// delay is not recorded; it is the network's normal behaviour.
  [[nodiscard]] std::size_t delay(std::string_view payload_id,
                                  std::size_t time);

  /// True iff `payload_id` is delivered twice ("duplicate").
  [[nodiscard]] bool duplicates(std::string_view payload_id,
                                std::size_t time);

  /// True iff the undirected link `a`<->`b` is cut during partition
  /// `window` ("partition"). Symmetric in its site arguments. Callers
  /// should memoise per (link, window): every `true` call records.
  [[nodiscard]] bool link_cut(std::string_view a, std::string_view b,
                              std::size_t window);

  /// True iff `site` withholds its commitment frame at `time`
  /// ("drop-vote").
  [[nodiscard]] bool vote_dropped(std::string_view site, std::size_t time);

  /// True iff `site` should announce stale commitment knowledge at `time`
  /// ("stale-vote").
  [[nodiscard]] bool vote_stale(std::string_view site, std::size_t time);

  /// True iff capture flush number `flush` crashes mid-write
  /// ("crash-write"). Mutually exclusive with the other capture faults by
  /// the writer's ask order, not by construction.
  [[nodiscard]] bool capture_crash(std::size_t flush);

  /// True iff capture flush number `flush` is silently cut short
  /// ("short-write").
  [[nodiscard]] bool capture_short_write(std::size_t flush);

  /// True iff one byte of capture flush number `flush` is flipped ("flip").
  [[nodiscard]] bool capture_bit_flip(std::size_t flush);

  /// Deterministic position in [0, len) at which a torn capture flush is
  /// cut (or flipped); uniform, so header/body boundaries of every frame
  /// in the batch are reachable. Not recorded (derived from a recorded
  /// fault). `len` must be > 0.
  [[nodiscard]] std::size_t capture_cut(std::size_t flush,
                                        std::size_t len) const;

  /// Everything injected so far, in call order.
  [[nodiscard]] const std::vector<InjectedFault>& injected() const {
    return injected_;
  }
  void clear_injected() { injected_.clear(); }

 private:
  /// 64-bit decision stream keyed by (point, subject, round, salt);
  /// independent of call order.
  [[nodiscard]] std::uint64_t key(FaultPoint point, std::string_view subject,
                                  std::size_t round,
                                  std::uint64_t salt) const;
  [[nodiscard]] bool roll(double p, FaultPoint point,
                          std::string_view subject, std::size_t round,
                          std::uint64_t salt) const;

  std::uint64_t seed_ = 0;
  FaultSpec spec_;
  std::vector<InjectedFault> injected_;
};

}  // namespace icecube
