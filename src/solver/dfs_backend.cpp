#include "solver/dfs_backend.hpp"

#include "core/parallel_driver.hpp"
#include "core/simulator.hpp"

namespace icecube {

void DfsBackend::solve(const SolveContext& ctx, Selection& selection,
                       SearchStats& stats) {
  const std::vector<ActionRecord>& records = *ctx.records;
  const ReconcilerOptions& options = *ctx.options;
  const std::vector<Cutset>& cutsets = *ctx.cutsets;

  if (ctx.pool != nullptr && cutsets.size() > 1) {
    // Independent cutsets are independent search problems: fan them out
    // across the pool and merge deterministically (see parallel_driver.hpp).
    run_cutsets_parallel(records, *ctx.relations, *ctx.initial, options,
                         *ctx.policy, cutsets, *ctx.deadline, *ctx.clock,
                         *ctx.pool, selection, stats, ctx.target_overlap);
    return;
  }
  for (const Cutset& cutset : cutsets) {
    // Under a non-empty cutset the dependence closure must be recomputed
    // with the cut vertices' edges removed (see Relations::restricted).
    Relations working;
    const Relations* active = ctx.relations;
    if (!cutset.empty()) {
      Bitset removed(records.size());
      for (ActionId a : cutset.actions) removed.set(a.index());
      working = ctx.relations->restricted(removed);
      active = &working;
    }
    Simulator simulator(records, *active, options, *ctx.policy, selection,
                        stats, *ctx.clock, *ctx.deadline, ctx.target_overlap);
    if (!simulator.run(cutset, *ctx.initial)) break;
  }
}

}  // namespace icecube
