#include "solver/local_search.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "core/constraint_builder.hpp"
#include "solver/components.hpp"

namespace icecube {

namespace {

constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

/// Slot-keyed mixing of a per-slot fingerprint hash into the state digest.
/// XOR of these over the touched slots changes iff some slot's state
/// changed (up to the usual 2^-64 hash-collision allowance).
std::uint64_t slot_mix(std::size_t slot, std::uint64_t fp) {
  std::uint64_t state = fp ^ (0x9e3779b97f4a7c15ULL * (slot + 1));
  return splitmix64(state);
}

}  // namespace

std::uint64_t universe_state_digest(const Universe& universe) {
  std::uint64_t digest = 0;
  for (std::size_t s = 0; s < universe.size(); ++s) {
    digest ^= slot_mix(s, universe.slot_fingerprint(ObjectId(s)));
  }
  return digest;
}

LocalSearchEngine::LocalSearchEngine(const std::vector<ActionRecord>& records,
                                     const SolverGraph& graph,
                                     const Universe& initial, Bitset excluded,
                                     const LocalSearchOptions& opts,
                                     const std::uint64_t* initial_digest)
    : records_(records),
      graph_(graph),
      initial_(initial),
      opts_(opts),
      excluded_(std::move(excluded)),
      rng_(opts.seed),
      temperature_(opts.initial_temperature) {
  const std::size_t n = records_.size();
  if (excluded_.size() != n) excluded_ = Bitset(n);
  dropped_ = Bitset(n);
  frozen_ = Bitset(n);
  pos_.assign(n, kNoPos);
  tabu_until_.assign(n, 0);
  targets_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!excluded_.test(i)) targets_[i] = records_[i].action->targets();
  }

  // Greedy construction: min-id topological order (Kahn) over the raw D
  // edges among schedulable actions. Cycle members never become ready; they
  // are frozen at the tail as permanently dropped — the sparse path's
  // counterpart of cutting them.
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t b = 0; b < n; ++b) {
    if (excluded_.test(b)) continue;
    for (ActionId a : graph_.preds[b]) {
      if (!excluded_.test(a.index())) ++indegree[b];
    }
  }
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (!excluded_.test(i) && indegree[i] == 0) {
      ready.push(static_cast<std::uint32_t>(i));
    }
  }
  sched_.reserve(n);
  while (!ready.empty()) {
    const ActionId id(ready.top());
    ready.pop();
    pos_[id.index()] = sched_.size();
    sched_.push_back(id);
    for (ActionId s : graph_.succs[id.index()]) {
      if (!excluded_.test(s.index()) && --indegree[s.index()] == 0) {
        ready.push(s.value());
      }
    }
  }
  live_end_ = sched_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded_.test(i) || pos_[i] != kNoPos) continue;
    frozen_.set(i);
    dropped_.set(i);
    pos_[i] = sched_.size();
    sched_.push_back(ActionId(i));
  }

  const std::size_t m = sched_.size();
  status_.assign(m, PosStatus::kDropped);
  dropped_count_ = m;

  interval_ = opts_.checkpoint_interval != 0
                  ? opts_.checkpoint_interval
                  : std::clamp<std::size_t>(m / 128, 16, 512);
  const std::size_t slabs = m == 0 ? 1 : (m - 1) / interval_ + 1;
  checkpoints_.resize(slabs);
  digests_.assign(slabs, 0);

  // Absolute digest of the initial universe; maintained per mutation from
  // here on, so digest equality is state equality (hash convention).
  const std::uint64_t digest0 = initial_digest != nullptr
                                    ? *initial_digest
                                    : universe_state_digest(initial_);
  checkpoints_[0] = initial_.snapshot();
  ++snapshots_;
  digests_[0] = digest0;

  Undo scratch;
  resimulate(0, m, scratch);

  best_sched_ = sched_;
  best_dropped_ = dropped_;
  best_cost_ = current_cost();
}

double LocalSearchEngine::cost_of(std::size_t executed, std::size_t failed,
                                  std::size_t dropped) const {
  return -static_cast<double>(executed) +
         0.25 * static_cast<double>(failed + dropped);
}

double LocalSearchEngine::current_cost() const {
  return cost_of(executed_, failed_, dropped_count_);
}

bool LocalSearchEngine::is_tabu(ActionId id) const {
  return tabu_until_[id.index()] > accepted_;
}

void LocalSearchEngine::note_acceptance(ActionId moved_a, ActionId moved_b) {
  ++accepted_;
  if (opts_.tabu_tenure == 0) return;
  tabu_until_[moved_a.index()] = accepted_ + opts_.tabu_tenure;
  tabu_until_[moved_b.index()] = accepted_ + opts_.tabu_tenure;
}

void LocalSearchEngine::replay_executed(Universe& state, std::uint64_t& digest,
                                        ActionId id) {
  const auto& targets = targets_[id.index()];
  std::uint64_t delta = 0;
  for (ObjectId t : targets) {
    delta ^= slot_mix(t.index(), state.slot_fingerprint(t));
  }
  const bool ok = records_[id.index()].action->execute(state);
  assert(ok && "replay of an executed action must succeed");
  (void)ok;
  for (ObjectId t : targets) {
    delta ^= slot_mix(t.index(), state.slot_fingerprint(t));
  }
  digest ^= delta;
}

LocalSearchEngine::PosStatus LocalSearchEngine::simulate_at(
    Universe& state, std::uint64_t& digest, std::size_t k, ActionId id) {
  const Action& action = *records_[id.index()].action;
  ++sim_steps_;
  if (!action.precondition(state)) return PosStatus::kFailed;
  const auto& targets = targets_[id.index()];
  std::uint64_t delta = 0;
  for (ObjectId t : targets) {
    delta ^= slot_mix(t.index(), state.slot_fingerprint(t));
  }
  if (action.execute(state)) {
    for (ObjectId t : targets) {
      delta ^= slot_mix(t.index(), state.slot_fingerprint(t));
    }
    digest ^= delta;
    return PosStatus::kExecuted;
  }
  // A failing execute may have partially mutated the state (the simulator
  // discards its per-step shadow copy in this case; we owe the same clean
  // semantics). Rebuild from the checkpoint below `k`: statuses for the
  // already re-evaluated prefix of this pass are current, the rest are the
  // still-valid previous ones.
  const std::size_t c = std::min(k / interval_, checkpoints_.size() - 1);
  state = checkpoints_[c].snapshot();
  digest = digests_[c];
  for (std::size_t p = c * interval_; p < k; ++p) {
    if (status_[p] == PosStatus::kExecuted) {
      replay_executed(state, digest, sched_[p]);
    }
  }
  return PosStatus::kFailed;
}

void LocalSearchEngine::resimulate(std::size_t first_changed,
                                   std::size_t changed_end, Undo& undo) {
  undo.executed = executed_;
  undo.failed = failed_;
  undo.dropped = dropped_count_;
  const std::size_t m = sched_.size();
  ++evaluations_;
  if (m == 0) return;
  const std::size_t c0 =
      std::min(first_changed / interval_, checkpoints_.size() - 1);
  Universe state = checkpoints_[c0].snapshot();
  std::uint64_t digest = digests_[c0];
  for (std::size_t k = c0 * interval_; k < m; ++k) {
    if (k % interval_ == 0) {
      const std::size_t c = k / interval_;
      if (c != c0) {
        if (k >= changed_end && digest == digests_[c]) {
          // The state entering this checkpoint is unchanged and so is the
          // rest of the configuration: every later status replays
          // identically. Converged.
          return;
        }
        undo.checkpoints.emplace_back(c, std::move(checkpoints_[c]));
        undo.digests.emplace_back(c, digests_[c]);
        checkpoints_[c] = state.snapshot();
        ++snapshots_;
        digests_[c] = digest;
      }
    }
    const ActionId id = sched_[k];
    if (k < first_changed) {
      if (status_[k] == PosStatus::kExecuted) {
        replay_executed(state, digest, id);
      }
      continue;
    }
    PosStatus next;
    if (dropped_.test(id.index())) {
      next = PosStatus::kDropped;
    } else {
      next = simulate_at(state, digest, k, id);
    }
    if (next != status_[k]) {
      undo.statuses.emplace_back(k, status_[k]);
      switch (status_[k]) {
        case PosStatus::kExecuted: --executed_; break;
        case PosStatus::kFailed: --failed_; break;
        case PosStatus::kDropped: --dropped_count_; break;
      }
      switch (next) {
        case PosStatus::kExecuted: ++executed_; break;
        case PosStatus::kFailed: ++failed_; break;
        case PosStatus::kDropped: ++dropped_count_; break;
      }
      status_[k] = next;
    }
  }
}

void LocalSearchEngine::revert(Undo& undo) {
  for (const auto& [k, st] : undo.statuses) status_[k] = st;
  for (std::size_t i = 0; i < undo.checkpoints.size(); ++i) {
    checkpoints_[undo.checkpoints[i].first] =
        std::move(undo.checkpoints[i].second);
    digests_[undo.digests[i].first] = undo.digests[i].second;
  }
  executed_ = undo.executed;
  failed_ = undo.failed;
  dropped_count_ = undo.dropped;
}

bool LocalSearchEngine::decide(double before, double after) {
  const double delta = after - before;
  if (delta < 0.0) return true;
  const double temperature = std::max(temperature_, opts_.min_temperature);
  return rng_.unit() < std::exp(-delta / temperature);
}

void LocalSearchEngine::commit(double after, ActionId moved_a,
                               ActionId moved_b) {
  note_acceptance(moved_a, moved_b);
  if (after < best_cost_ - 1e-12) {
    best_cost_ = after;
    best_sched_ = sched_;
    best_dropped_ = dropped_;
    stall_ = 0;
  }
}

bool LocalSearchEngine::edge_blocks_swap(ActionId first,
                                         ActionId second) const {
  return graph_.has_edge(first, second);
}

bool LocalSearchEngine::propose_swap(Undo& undo) {
  if (live_end_ < 2) return false;
  const std::size_t i = rng_.below(live_end_ - 1);
  const ActionId a = sched_[i];
  const ActionId b = sched_[i + 1];
  if (edge_blocks_swap(a, b)) return false;
  if (is_tabu(a) || is_tabu(b)) return false;
  // Two adjacent actions with disjoint targets commute: the swap cannot
  // change any status. Skip the evaluation entirely.
  if (!graph_.overlaps(a, b)) return false;
  const double before = current_cost();
  std::swap(sched_[i], sched_[i + 1]);
  pos_[a.index()] = i + 1;
  pos_[b.index()] = i;
  resimulate(i, i + 2, undo);
  const double after = current_cost();
  if (!decide(before, after)) {
    revert(undo);
    std::swap(sched_[i], sched_[i + 1]);
    pos_[a.index()] = i;
    pos_[b.index()] = i + 1;
    return true;
  }
  commit(after, a, b);
  return true;
}

bool LocalSearchEngine::apply_reinsert(std::size_t from, std::size_t to,
                                       Undo& undo) {
  const ActionId x = sched_[from];
  const double before = current_cost();
  const std::size_t lo = std::min(from, to);
  const std::size_t hi = std::max(from, to);
  auto shift = [this](std::size_t src, std::size_t dst) {
    const ActionId moved = sched_[src];
    if (src < dst) {
      std::rotate(sched_.begin() + static_cast<std::ptrdiff_t>(src),
                  sched_.begin() + static_cast<std::ptrdiff_t>(src) + 1,
                  sched_.begin() + static_cast<std::ptrdiff_t>(dst) + 1);
    } else {
      std::rotate(sched_.begin() + static_cast<std::ptrdiff_t>(dst),
                  sched_.begin() + static_cast<std::ptrdiff_t>(src),
                  sched_.begin() + static_cast<std::ptrdiff_t>(src) + 1);
    }
    const std::size_t a = std::min(src, dst);
    const std::size_t b = std::max(src, dst);
    for (std::size_t k = a; k <= b; ++k) pos_[sched_[k].index()] = k;
    (void)moved;
  };
  shift(from, to);
  resimulate(lo, hi + 1, undo);
  const double after = current_cost();
  if (!decide(before, after)) {
    revert(undo);
    shift(to, from);
    return true;
  }
  commit(after, x, x);
  return true;
}

bool LocalSearchEngine::propose_reinsert(Undo& undo) {
  if (live_end_ < 2) return false;
  const std::size_t i = rng_.below(live_end_);
  const ActionId x = sched_[i];
  if (is_tabu(x)) return false;
  const std::size_t window = std::max<std::size_t>(opts_.reinsert_window, 1);
  const std::size_t dist = 1 + rng_.below(window);
  const bool earlier = rng_.chance(0.5);
  std::size_t j = earlier ? (i >= dist ? i - dist : 0)
                          : std::min(i + dist, live_end_ - 1);
  if (j == i) return false;
  // Clamp the destination to the D-feasible range: no predecessor of x may
  // end up after it, no successor before it.
  if (j < i) {
    for (ActionId p : graph_.preds[x.index()]) {
      const std::size_t pp = pos_[p.index()];
      if (pp != kNoPos && pp < i && pp >= j) j = std::max(j, pp + 1);
    }
  } else {
    for (ActionId s : graph_.succs[x.index()]) {
      const std::size_t sp = pos_[s.index()];
      if (sp != kNoPos && sp > i && sp <= j) j = std::min(j, sp - 1);
    }
  }
  if (j == i) return false;
  return apply_reinsert(i, j, undo);
}

bool LocalSearchEngine::propose_rescue(Undo& undo) {
  if (live_end_ < 2) return false;
  // Probe a bounded window for a failed action, then hop it in front of the
  // nearest earlier executed action it shares a target with — the likely
  // winner of the resource it needed.
  const std::size_t start = rng_.below(live_end_);
  const std::size_t probes = std::min<std::size_t>(64, live_end_);
  // Most failures on contended workloads are *cascades* — a dependency's
  // token never appeared, so no hop can save the action and it has no
  // executed conflict partner. Probe past those: keep scanning failed
  // actions until one is a root loser, i.e. has an earlier *executed*
  // overlap partner. Hop in front of the earliest such partner: for a
  // capacity-limited cell that is the winner that starved it (a nearer
  // partner may have executed, but it wasn't first to consume). Far hops
  // re-simulate long suffixes — rescue_scan caps the distance when a
  // caller needs per-move cost bounded; 0 leaves it to the wall budget.
  std::size_t i = kNoPos;
  std::size_t j = kNoPos;
  for (std::size_t o = 0; o < probes && j == kNoPos; ++o) {
    const std::size_t k = (start + o) % live_end_;
    if (k == 0 || status_[k] != PosStatus::kFailed) continue;
    const ActionId cand = sched_[k];
    if (is_tabu(cand)) continue;
    std::size_t lo = 0;
    if (opts_.rescue_scan > 0) {
      const std::size_t reach = std::max(opts_.rescue_scan, 16 * interval_);
      lo = k > reach ? k - reach : 0;
    }
    for (ActionId ov : graph_.overlap_lists[cand.index()]) {
      const std::size_t op = pos_[ov.index()];
      if (op == kNoPos || op >= k || op < lo) continue;
      if (status_[op] != PosStatus::kExecuted) continue;
      if (j == kNoPos || op < j) j = op;
    }
    if (j != kNoPos) i = k;
  }
  if (i == kNoPos) return false;
  const ActionId x = sched_[i];
  for (ActionId p : graph_.preds[x.index()]) {
    const std::size_t pp = pos_[p.index()];
    if (pp != kNoPos && pp < i && pp >= j) j = std::max(j, pp + 1);
  }
  if (j == i) return false;
  return apply_reinsert(i, j, undo);
}

bool LocalSearchEngine::propose_flip(Undo& undo) {
  if (live_end_ == 0) return false;
  const std::size_t i = rng_.below(live_end_);
  const ActionId x = sched_[i];
  if (is_tabu(x)) return false;
  const double before = current_cost();
  const bool was_dropped = dropped_.test(x.index());
  if (was_dropped) {
    dropped_.reset(x.index());
  } else {
    dropped_.set(x.index());
  }
  resimulate(i, i + 1, undo);
  const double after = current_cost();
  if (!decide(before, after)) {
    revert(undo);
    if (was_dropped) {
      dropped_.set(x.index());
    } else {
      dropped_.reset(x.index());
    }
    return true;
  }
  commit(after, x, x);
  return true;
}

bool LocalSearchEngine::step() {
  if (opts_.stall_moves > 0 && stall_ >= opts_.stall_moves) return false;
  ++proposals_;
  ++stall_;
  temperature_ = std::max(temperature_ * opts_.cooling, opts_.min_temperature);
  double total = opts_.w_rescue + opts_.w_reinsert + opts_.w_swap + opts_.w_flip;
  if (total <= 0.0) total = 1.0;
  double pick = rng_.unit() * total;
  Undo undo;
  if ((pick -= opts_.w_rescue) < 0.0) {
    (void)propose_rescue(undo);
  } else if ((pick -= opts_.w_reinsert) < 0.0) {
    (void)propose_reinsert(undo);
  } else if ((pick -= opts_.w_swap) < 0.0) {
    (void)propose_swap(undo);
  } else {
    (void)propose_flip(undo);
  }
  return true;
}

bool LocalSearchEngine::run(std::uint64_t max_proposals,
                            const Deadline& deadline,
                            std::uint64_t max_sim_steps) {
  while (proposals_ < max_proposals) {
    if (deadline.expired() || sim_steps_ >= max_sim_steps) return true;
    if (!step()) return false;
  }
  return false;
}

namespace {

/// Replays a (permutation, drop-set) configuration from `initial` without
/// per-action snapshots — an O(n²) slot-copy cost at 50k actions. A
/// precondition failure never mutates; the rare execute failure *after* a
/// passing precondition may leave a partial mutation, so that path rebuilds
/// the state by replaying the executed prefix (actions are deterministic,
/// the replay cannot fail).
void replay_config(const std::vector<ActionRecord>& records,
                   const Universe& initial,
                   const std::vector<ActionId>& sched, const Bitset& dropped,
                   std::vector<ActionId>& executed,
                   std::vector<ActionId>& skipped, Universe& final_state) {
  Universe state = initial.snapshot();
  for (ActionId id : sched) {
    if (dropped.test(id.index())) {
      skipped.push_back(id);
      continue;
    }
    const Action& action = *records[id.index()].action;
    if (!action.precondition(state)) {
      skipped.push_back(id);
      continue;
    }
    if (action.execute(state)) {
      executed.push_back(id);
      continue;
    }
    state = initial.snapshot();
    for (ActionId e : executed) {
      const Action& ea = *records[e.index()].action;
      const bool ok = ea.precondition(state) && ea.execute(state);
      assert(ok && "deterministic prefix replay failed");
      (void)ok;
    }
    skipped.push_back(id);
  }
  final_state = std::move(state);
}

}  // namespace

double LocalSearchEngine::full_replay_cost() const {
  std::vector<ActionId> executed;
  std::vector<ActionId> skipped;
  Universe final_state;
  replay_config(records_, initial_, sched_, dropped_, executed, skipped,
                final_state);
  return cost_of(executed.size(), skipped.size(), 0);
}

Outcome LocalSearchEngine::best_outcome() const {
  Outcome out;
  replay_config(records_, initial_, best_sched_, best_dropped_, out.schedule,
                out.skipped, out.final_state);
  out.complete = true;
  return out;
}

namespace {

/// The sparse whole-problem path: decompose into conflict components, solve
/// each independently (canonical seeds, compacted sub-problems), merge
/// deterministically. This is also what makes the streaming daemon exact —
/// it re-solves single components with the same code and merges to the same
/// schedule (see solver/components.hpp).
void solve_decomposed(const SolveContext& ctx, Selection& selection,
                      SearchStats& stats, bool allow_moves,
                      const Cutset& cutset) {
  const std::vector<ActionRecord>& records = *ctx.records;
  const ReconcilerOptions& options = *ctx.options;

  const std::vector<std::vector<ActionId>> components =
      conflict_components(records, *ctx.graph);
  const std::uint64_t digest0 = universe_state_digest(*ctx.initial);

  Universe working = ctx.initial->snapshot();
  std::vector<ComponentSolution> solved;
  solved.reserve(components.size());
  for (const std::vector<ActionId>& members : components) {
    // Past the deadline the remaining components degrade to their greedy
    // construction — still a complete outcome, like the single-engine walk
    // stopping mid-run.
    const bool moves_now = allow_moves && !ctx.deadline->expired();
    stats.hit_limit |= allow_moves && !moves_now;
    const SubProblem sub = extract_subproblem(records, *ctx.graph, members);
    solved.push_back(solve_component(sub, *ctx.initial, working, options,
                                     moves_now, digest0, *ctx.deadline,
                                     stats));
  }

  std::vector<const ComponentSolution*> parts;
  parts.reserve(solved.size());
  for (const ComponentSolution& s : solved) parts.push_back(&s);
  std::vector<ActionId> sequence;
  std::vector<RunStatus> status;
  merge_solutions(parts, records, sequence, status);

  Outcome out;
  for (std::size_t k = 0; k < sequence.size(); ++k) {
    if (status[k] == RunStatus::kExecuted) {
      out.schedule.push_back(sequence[k]);
    } else {
      out.skipped.push_back(sequence[k]);
    }
  }
  out.final_state = std::move(working);
  out.complete = true;
  out.cutset = cutset.actions;
  out.cost = ctx.policy->cost(out);
  ctx.policy->on_outcome(out);
  if (selection.offer(std::move(out))) {
    stats.time_to_best = ctx.clock->seconds();
    stats.schedules_to_best = stats.schedules_completed;
  }
}

/// Shared driver for the greedy and local-search backends. The sparse
/// whole-problem case (one implicit empty cutset over a prebuilt graph)
/// goes through the component decomposition; the auto path's real cutsets
/// keep the one-engine-per-cutset loop.
void solve_with_engine(const SolveContext& ctx, Selection& selection,
                       SearchStats& stats, bool allow_moves) {
  const std::vector<ActionRecord>& records = *ctx.records;
  const ReconcilerOptions& options = *ctx.options;
  const std::size_t n = records.size();

  const std::vector<Cutset> implicit{Cutset{}};
  const std::vector<Cutset>& cutsets =
      ctx.cutsets != nullptr ? *ctx.cutsets : implicit;

  if (ctx.graph != nullptr && cutsets.size() == 1 &&
      cutsets.front().actions.empty() && n > 0) {
    solve_decomposed(ctx, selection, stats, allow_moves, cutsets.front());
    return;
  }

  SolverGraph derived;
  const SolverGraph* graph = ctx.graph;
  if (graph == nullptr) {
    // Auto path: the dense relations exist; flip them into adjacency form.
    derived = graph_from_relations(*ctx.relations,
                                   build_target_overlap(records));
    graph = &derived;
  }

  std::size_t cut_index = 0;
  for (const Cutset& cutset : cutsets) {
    Bitset excluded(n);
    for (ActionId a : cutset.actions) excluded.set(a.index());
    LocalSearchOptions ls = options.local_search;
    // Per-cutset sub-streams keep multi-cutset runs deterministic without
    // correlating the walks.
    ls.seed += 0x9e3779b97f4a7c15ULL * cut_index;
    ++cut_index;
    LocalSearchEngine engine(records, *graph, *ctx.initial,
                             std::move(excluded), ls);
    if (allow_moves) {
      const std::uint64_t budget =
          std::min<std::uint64_t>(ls.max_moves, options.limits.max_schedules);
      const std::uint64_t steps_left =
          options.limits.max_steps > stats.sim_steps
              ? options.limits.max_steps - stats.sim_steps
              : 0;
      stats.hit_limit |= engine.run(budget, *ctx.deadline, steps_left);
    }
    Outcome out = engine.best_outcome();
    out.cutset = cutset.actions;
    out.cost = ctx.policy->cost(out);
    stats.schedules_completed += engine.evaluations();
    stats.sim_steps += engine.sim_steps();
    stats.moves_proposed += engine.proposals();
    stats.moves_accepted += engine.accepted();
    stats.state_clones += engine.snapshots_taken();
    // The policy ranks (and may veto further work after) the final best of
    // each sub-problem; intermediate walk configurations are internal and
    // never surfaced. The walk itself always optimises the default
    // objective -(executed) + 0.25·skipped.
    const bool keep_going = ctx.policy->on_outcome(out);
    if (selection.offer(std::move(out))) {
      stats.time_to_best = ctx.clock->seconds();
      stats.schedules_to_best = stats.schedules_completed;
    }
    if (!keep_going || ctx.deadline->expired()) break;
  }
}

}  // namespace

void LocalSearchBackend::solve(const SolveContext& ctx, Selection& selection,
                               SearchStats& stats) {
  solve_with_engine(ctx, selection, stats, /*allow_moves=*/true);
}

void GreedyBackend::solve(const SolveContext& ctx, Selection& selection,
                          SearchStats& stats) {
  solve_with_engine(ctx, selection, stats, /*allow_moves=*/false);
}

}  // namespace icecube
