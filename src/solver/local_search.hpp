// Local-search solver: seeded SA/tabu over schedule permutations with
// incremental suffix re-simulation (DESIGN.md §13).
//
// Fages (*CLP versus LS on Log-based Reconciliation Problems*) shows that on
// log-based reconciliation, local search over candidate schedules decisively
// beats complete search at scale. This engine walks the space of
// (permutation, drop-set) configurations:
//
//   * the permutation always stays *topological* w.r.t. the raw D edges
//     (moves are feasibility-checked in O(deg) against the adjacency lists),
//     which is exactly "respects the closed relation";
//   * every action not executed is skipped, never aborted — the walk's
//     configurations are all complete outcomes in the paper's sense;
//   * the internal objective is the default policy cost,
//     -(executed) + 0.25·(skipped): strictly fewer skips is strictly better.
//
// Move evaluation is incremental: the engine keeps a stack of COW Universe
// snapshots every K positions plus a per-checkpoint 64-bit state digest
// (XOR of per-slot fingerprint hashes, maintained per mutation). A move
// re-simulates only from the checkpoint at or below the first changed
// position, and stops as soon as it crosses a checkpoint at or beyond the
// last changed position with an unchanged digest — from there the old
// statuses provably replay identically. A rejected move is undone from the
// saved statuses/checkpoints without re-simulation.
//
// The walk is fully determined by LocalSearchOptions::seed (plus the
// options): no threads, no wall-clock dependence unless a deadline or step
// budget actually expires mid-run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/universe.hpp"
#include "solver/backend.hpp"
#include "solver/graph.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Absolute 64-bit state digest of a universe under the engine's slot-mix
/// convention (XOR of keyed per-slot fingerprint hashes). Computing it
/// walks every slot; callers solving many components against one initial
/// universe compute it once and hand it to each engine.
[[nodiscard]] std::uint64_t universe_state_digest(const Universe& universe);

/// The annealing walk over one sub-problem. Exposed (rather than hidden in
/// the backend) so the oracle test can drive single steps and compare the
/// incremental cost against a full fresh replay.
class LocalSearchEngine {
 public:
  /// `excluded` marks actions left out of this sub-problem (the cutset on
  /// the auto path; empty bits otherwise). All references must outlive the
  /// engine. Construction performs the greedy build: a min-id topological
  /// permutation (Kahn) replayed once with skip-on-failure — so the start
  /// configuration, and therefore the final result, is never worse than the
  /// greedy backend's. `initial_digest`, when non-null, must equal
  /// `universe_state_digest(initial)` and skips that O(slots) walk.
  LocalSearchEngine(const std::vector<ActionRecord>& records,
                    const SolverGraph& graph, const Universe& initial,
                    Bitset excluded, const LocalSearchOptions& opts,
                    const std::uint64_t* initial_digest = nullptr);

  /// Proposes (and maybe applies) one move. Returns false once the stall
  /// budget says stop. Does not check deadlines — `run` does.
  bool step();

  /// The annealing loop: steps until `max_proposals`, the stall budget, the
  /// deadline or the step budget ends the walk. Returns true iff a budget
  /// (deadline/steps) was hit rather than the move/stall budget.
  bool run(std::uint64_t max_proposals, const Deadline& deadline,
           std::uint64_t max_sim_steps);

  /// Current / incumbent-best internal objective value.
  [[nodiscard]] double current_cost() const;
  [[nodiscard]] double best_cost() const { return best_cost_; }

  /// Oracle: replays the *current* configuration from the initial universe
  /// with none of the incremental machinery and returns its objective. The
  /// suffix-resimulation test asserts this equals `current_cost()` after
  /// every move.
  [[nodiscard]] double full_replay_cost() const;

  /// Materialises the incumbent-best configuration as a complete Outcome
  /// (costed by the caller's policy, not the internal objective).
  [[nodiscard]] Outcome best_outcome() const;

  /// The incumbent-best configuration itself, for callers that replay it
  /// externally (the component solver replays against a shared working
  /// universe instead of a fresh snapshot). Positions >= live_end() are the
  /// frozen cycle tail, in ascending id order — moves never touch it.
  [[nodiscard]] const std::vector<ActionId>& best_schedule() const {
    return best_sched_;
  }
  [[nodiscard]] const Bitset& best_dropped() const { return best_dropped_; }
  [[nodiscard]] std::size_t live_end() const { return live_end_; }

  [[nodiscard]] std::uint64_t proposals() const { return proposals_; }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }
  [[nodiscard]] std::uint64_t sim_steps() const { return sim_steps_; }
  [[nodiscard]] std::uint64_t snapshots_taken() const { return snapshots_; }

 private:
  enum class PosStatus : std::uint8_t { kExecuted, kFailed, kDropped };

  /// Everything needed to revert one rejected move.
  struct Undo {
    std::vector<std::pair<std::size_t, PosStatus>> statuses;
    std::vector<std::pair<std::size_t, Universe>> checkpoints;
    std::vector<std::pair<std::size_t, std::uint64_t>> digests;
    std::size_t executed = 0;
    std::size_t failed = 0;
    std::size_t dropped = 0;
  };

  // Move generation; each returns true iff a feasible move was applied and
  // evaluated (writing the revert info into `undo`).
  bool propose_swap(Undo& undo);
  bool propose_reinsert(Undo& undo);
  bool propose_rescue(Undo& undo);
  bool propose_flip(Undo& undo);

  /// Moves sched_[from] to position `to` (rotating the range between) and
  /// re-evaluates. Shared by reinsert and rescue.
  bool apply_reinsert(std::size_t from, std::size_t to, Undo& undo);

  /// Re-simulates positions [first_changed, …) from the checkpoint at or
  /// below `first_changed`, stopping at the first checkpoint ≥ `changed_end`
  /// whose state digest is unchanged.
  void resimulate(std::size_t first_changed, std::size_t changed_end,
                  Undo& undo);
  /// One fresh simulation attempt of `id` against `state`; returns the new
  /// status and keeps `digest` in sync (rebuilding from the checkpoint below
  /// `k` on the rare tainting execute failure).
  PosStatus simulate_at(Universe& state, std::uint64_t& digest, std::size_t k,
                        ActionId id);
  /// Re-applies a known-executed action (prefix replay), digest-tracked.
  void replay_executed(Universe& state, std::uint64_t& digest, ActionId id);

  void revert(Undo& undo);
  /// SA acceptance rule on the evaluated move's costs.
  [[nodiscard]] bool decide(double before, double after);
  /// Post-acceptance bookkeeping: tabu stamps, incumbent update.
  void commit(double after, ActionId moved_a, ActionId moved_b);
  void note_acceptance(ActionId moved_a, ActionId moved_b);
  [[nodiscard]] bool is_tabu(ActionId id) const;
  [[nodiscard]] bool edge_blocks_swap(ActionId first, ActionId second) const;
  [[nodiscard]] double cost_of(std::size_t executed, std::size_t failed,
                               std::size_t dropped) const;

  const std::vector<ActionRecord>& records_;
  const SolverGraph& graph_;
  const Universe& initial_;
  LocalSearchOptions opts_;
  Bitset excluded_;

  std::vector<ActionId> sched_;       // topological permutation
  std::vector<std::size_t> pos_;      // action index → position (npos if out)
  std::vector<PosStatus> status_;     // per position
  Bitset dropped_;                    // per action: flip-dropped
  Bitset frozen_;                     // per action: cycle member, never moves
  std::size_t live_end_ = 0;          // positions < live_end_ are movable
  std::size_t executed_ = 0;
  std::size_t failed_ = 0;
  std::size_t dropped_count_ = 0;

  std::size_t interval_ = 64;              // checkpoint spacing K
  std::vector<Universe> checkpoints_;      // state before position c·K
  std::vector<std::uint64_t> digests_;     // state digest at each checkpoint
  std::vector<std::vector<ObjectId>> targets_;  // per action, fetched once

  Rng rng_;
  double temperature_ = 0.0;
  std::vector<std::uint64_t> tabu_until_;  // per action, vs accepted_
  std::uint64_t proposals_ = 0;
  std::uint64_t evaluations_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t stall_ = 0;
  std::uint64_t sim_steps_ = 0;
  std::uint64_t snapshots_ = 0;

  std::vector<ActionId> best_sched_;
  Bitset best_dropped_;
  double best_cost_ = 0.0;
};

/// Backend wrapper: one engine per cutset (sparse path: the single implicit
/// empty cutset), best outcome offered to the selection.
class LocalSearchBackend final : public SolverBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "ls"; }
  void solve(const SolveContext& ctx, Selection& selection,
             SearchStats& stats) override;
};

/// Greedy-repair baseline: exactly the local-search start configuration
/// (min-id topological order, one replay with skip), zero moves.
class GreedyBackend final : public SolverBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }
  void solve(const SolveContext& ctx, Selection& selection,
             SearchStats& stats) override;
};

}  // namespace icecube
