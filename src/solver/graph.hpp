// Sparse constraint graph for the scalable solver backends (DESIGN.md §13).
//
// The DFS engine consumes the dense ConstraintMatrix and the Warshall-closed
// Relations — both Θ(n²) (the closure Θ(n³/64)), which walls off 10k+-action
// logs long before the search itself does. The greedy and local-search
// backends only ever ask two questions:
//
//   * which actions must precede action a (the raw D edges), and
//   * which actions share a target with a (the conflict neighbourhood),
//
// so they run against this adjacency-list form instead. Both questions stay
// answerable without the transitive closure because those backends maintain
// a *topological* permutation invariant: a permutation respects the closed
// relation iff it respects every raw edge.
//
// Two constructions are provided: `build_solver_graph` builds the lists
// directly from the target-inverted index (never materialising a matrix —
// the sparse path for large n), and `graph_from_relations` converts an
// already-built dense Relations (used when the auto backend hands an
// individual cutset to local search mid-run).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/log.hpp"
#include "core/relations.hpp"
#include "core/universe.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Adjacency-list view of the dependence relation and the target-overlap
/// neighbourhoods. All lists are sorted by action id.
struct SolverGraph {
  std::size_t n = 0;
  /// preds[b] = every a with a raw D edge a → b ("a must precede b").
  std::vector<std::vector<ActionId>> preds;
  /// succs[a] = every b with a raw D edge a → b.
  std::vector<std::vector<ActionId>> succs;

  /// Target-overlap neighbourhoods: exactly one representation is populated.
  /// The sparse build fills `overlap_lists`; the Relations conversion reuses
  /// the dense per-action bitsets (`overlap_bits`) when the caller has them.
  std::vector<std::vector<ActionId>> overlap_lists;
  std::vector<Bitset> overlap_bits;

  [[nodiscard]] bool has_edge(ActionId a, ActionId b) const;
  [[nodiscard]] bool overlaps(ActionId a, ActionId b) const;
  [[nodiscard]] std::size_t edge_count() const;
};

/// Builds the graph straight from the target→actions inverted index: only
/// pairs sharing at least one target are evaluated (disjoint-target pairs
/// are `safe` in both directions by §2.3 rule 1 and contribute nothing).
/// Produces exactly the raw D edges `Relations::from_constraints` would
/// derive from the full matrix, at O(Σ per-target group²) pair evaluations
/// instead of Θ(n²) cells. Workloads funnelling every action through one
/// object defeat that bound — their constraint graph genuinely is dense —
/// so keep single-hot-object inputs on the DFS path sizes.
[[nodiscard]] SolverGraph build_solver_graph(
    const Universe& universe, const std::vector<ActionRecord>& records,
    ConstraintBuildStats* stats = nullptr);

/// Converts an existing dense Relations (raw edges only) plus the §6 overlap
/// bitsets into the adjacency form. `overlap` may be empty when the caller
/// only needs the dependence lists (the greedy backend).
[[nodiscard]] SolverGraph graph_from_relations(const Relations& relations,
                                               std::vector<Bitset> overlap);

}  // namespace icecube
