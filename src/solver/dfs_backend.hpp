// The exhaustive cutset DFS behind the SolverBackend interface.
//
// This is the paper's search engine, moved verbatim out of Reconciler::run:
// one CandidateScheduler/Simulator search per proper cutset, sequential or
// fanned out across the pool with the deterministic budget-carving merge
// (parallel_driver.hpp). Schedules, outcomes and non-timing stats are
// bit-for-bit identical to the pre-backend engine for any thread count.
#pragma once

#include "solver/backend.hpp"

namespace icecube {

class DfsBackend final : public SolverBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "dfs"; }
  void solve(const SolveContext& ctx, Selection& selection,
             SearchStats& stats) override;
};

}  // namespace icecube
