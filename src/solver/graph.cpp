#include "solver/graph.hpp"

#include <algorithm>

namespace icecube {

namespace {

bool sorted_contains(const std::vector<ActionId>& list, ActionId id) {
  return std::binary_search(list.begin(), list.end(), id);
}

}  // namespace

bool SolverGraph::has_edge(ActionId a, ActionId b) const {
  return sorted_contains(succs[a.index()], b);
}

bool SolverGraph::overlaps(ActionId a, ActionId b) const {
  if (!overlap_bits.empty()) return overlap_bits[a.index()].test(b.index());
  if (!overlap_lists.empty()) return sorted_contains(overlap_lists[a.index()], b);
  return false;
}

std::size_t SolverGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& list : succs) total += list.size();
  return total;
}

SolverGraph build_solver_graph(const Universe& universe,
                               const std::vector<ActionRecord>& records,
                               ConstraintBuildStats* stats) {
  const std::size_t n = records.size();
  SolverGraph graph;
  graph.n = n;
  graph.preds.resize(n);
  graph.succs.resize(n);
  graph.overlap_lists.resize(n);
  if (n == 0) return graph;

  // Target → actions inverted index (dense over object ids, like the sparse
  // matrix builder's).
  std::vector<std::vector<ActionId>> by_target(universe.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (ObjectId t : records[i].action->targets()) {
      by_target[t.index()].push_back(ActionId(i));
    }
  }

  // Unordered pairs sharing at least one target, deduplicated across the
  // targets they share.
  std::vector<std::uint64_t> pair_keys;
  for (const auto& group : by_target) {
    for (std::size_t x = 0; x + 1 < group.size(); ++x) {
      for (std::size_t y = x + 1; y < group.size(); ++y) {
        const std::uint64_t lo = group[x].value();
        const std::uint64_t hi = group[y].value();
        pair_keys.push_back(lo < hi ? (lo << 32) | hi : (hi << 32) | lo);
      }
    }
  }
  std::sort(pair_keys.begin(), pair_keys.end());
  pair_keys.erase(std::unique(pair_keys.begin(), pair_keys.end()),
                  pair_keys.end());

  for (const std::uint64_t key : pair_keys) {
    const ActionId a(static_cast<std::size_t>(key >> 32));
    const ActionId b(static_cast<std::size_t>(key & 0xffffffffULL));
    const ActionRecord& ra = records[a.index()];
    const ActionRecord& rb = records[b.index()];
    graph.overlap_lists[a.index()].push_back(b);
    graph.overlap_lists[b.index()].push_back(a);
    // Per the Relations mapping, `constraint(x, y) = unsafe` adds the raw D
    // edge y → x. A same-log pair is safe in its recorded direction (§2.3
    // rule 2), so only the log-reversing direction is evaluated.
    const bool a_first = ra.before_in_log(rb);
    const bool b_first = rb.before_in_log(ra);
    if (!a_first) {
      if (stats != nullptr) ++stats->pairs_evaluated;
      if (evaluate_constraint(universe, ra, rb) == Constraint::kUnsafe) {
        graph.succs[b.index()].push_back(a);
        graph.preds[a.index()].push_back(b);
      }
    }
    if (!b_first) {
      if (stats != nullptr) ++stats->pairs_evaluated;
      if (evaluate_constraint(universe, rb, ra) == Constraint::kUnsafe) {
        graph.succs[a.index()].push_back(b);
        graph.preds[b.index()].push_back(a);
      }
    }
    if (stats != nullptr) ++stats->target_set_builds;
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::sort(graph.preds[i].begin(), graph.preds[i].end());
    std::sort(graph.succs[i].begin(), graph.succs[i].end());
    std::sort(graph.overlap_lists[i].begin(), graph.overlap_lists[i].end());
  }
  return graph;
}

SolverGraph graph_from_relations(const Relations& relations,
                                 std::vector<Bitset> overlap) {
  const std::size_t n = relations.size();
  SolverGraph graph;
  graph.n = n;
  graph.preds.resize(n);
  graph.succs.resize(n);
  graph.overlap_bits = std::move(overlap);
  // The rescue move walks overlap adjacency lists, so materialise them from
  // the bit rows as well (cheap: this path only runs under
  // dense_graph_limit).
  graph.overlap_lists.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    relations.raw_successors(ActionId(a)).for_each([&](std::size_t b) {
      graph.succs[a].push_back(ActionId(b));
      graph.preds[b].push_back(ActionId(a));
    });
    graph.overlap_bits[a].for_each([&](std::size_t b) {
      graph.overlap_lists[a].push_back(ActionId(b));
    });
  }
  // for_each yields ascending ids, so succs is sorted; preds receives each
  // entry in ascending `a` order, which is also sorted.
  return graph;
}

}  // namespace icecube
