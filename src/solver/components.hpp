// Conflict-component decomposition of the sparse solver path.
//
// Two actions interact — statically (a D edge needs a shared target) or
// dynamically (preconditions and executions read/write targets only) — iff
// they are connected through the target-overlap relation. A connected
// component of that relation is therefore an independent sub-problem: its
// schedule, statuses and final slot values do not depend on any other
// component, and any interleaving of per-component schedules is a valid
// global schedule.
//
// The greedy/local-search backends exploit this by solving each component
// separately and merging deterministically. Beyond the straight perf win
// (per-component walks, no cross-component move proposals that can never
// change a status), the decomposition is what makes *streaming*
// reconciliation exact: the daemon re-solves only components touched by new
// arrivals, and because each component is compacted into local ids assigned
// in stream-priority order — the (log, position) rank, which batch
// `flatten()` ids follow — a component's sub-problem is bit-identical
// whether its members arrived one at a time in any interleaving or all at
// once. Same sub-problem + same canonical seed = same solution, so a
// streamed run's final merged schedule equals the batch run's.
#pragma once

#include <cstdint>
#include <vector>

#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/universe.hpp"
#include "solver/graph.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"
#include "util/timer.hpp"

namespace icecube {

/// The (log, position) rank of a record packed into one key. Batch flatten
/// assigns ActionIds in exactly this order; the streaming daemon assigns
/// ids in arrival order, so priority — not id — is the canonical identity
/// both sides agree on.
[[nodiscard]] inline std::uint64_t stream_priority(const ActionRecord& rec) {
  return (static_cast<std::uint64_t>(rec.log.value()) << 32) |
         static_cast<std::uint64_t>(rec.position);
}

/// One component compacted into a self-contained sub-problem. Local ids
/// 0..m-1 are assigned in stream-priority order, so the engine's min-id
/// tie-breaks (Kahn queue, frozen tail) are arrival-order invariant.
struct SubProblem {
  std::vector<ActionRecord> records;  ///< local id → record
  SolverGraph graph;                  ///< adjacency remapped to local ids
  std::vector<ActionId> global_ids;   ///< local id → caller id
  std::uint64_t min_priority = 0;     ///< priority of local id 0
};

/// Connected components of the target-overlap relation. Members are caller
/// ids sorted by stream priority; components are sorted by their minimum
/// member priority. (Edges are a subset of overlaps — an unsafe pair shares
/// a target — so overlap connectivity is the whole relation.)
[[nodiscard]] std::vector<std::vector<ActionId>> conflict_components(
    const std::vector<ActionRecord>& records, const SolverGraph& graph);

/// Compacts one component (members as caller ids, any order) into a
/// SubProblem.
[[nodiscard]] SubProblem extract_subproblem(
    const std::vector<ActionRecord>& records, const SolverGraph& graph,
    const std::vector<ActionId>& members);

/// Per-position result of replaying a configuration.
enum class RunStatus : std::uint8_t { kExecuted, kFailed, kDropped };

/// A solved component: the full best permutation in caller ids — live
/// prefix (positions < live_end) then the frozen cycle tail — with
/// per-position replay statuses.
struct ComponentSolution {
  std::vector<ActionId> sequence;
  std::vector<RunStatus> status;
  std::size_t live_end = 0;
  std::uint64_t min_priority = 0;
};

/// The greedy construction over a sub-problem: min-local-id Kahn order with
/// cycle members frozen at the tail — exactly LocalSearchEngine's start
/// configuration, without building an engine. Returns local ids.
struct GreedyOrder {
  std::vector<ActionId> sched;
  std::size_t live_end = 0;
};
[[nodiscard]] GreedyOrder greedy_order(const SolverGraph& graph);

/// Replays one configuration (`sched` in local ids, `dropped` per local id)
/// of `sub` against `working`, first rewinding every slot the component
/// touches back to `pristine`. Skip-on-failure semantics match the
/// engine's: a precondition failure never mutates; a failing execute's
/// partial mutation is repaired by replaying the executed prefix. Returns
/// per-position statuses; `working` is left at the component's final state
/// (all other slots untouched — components are target-disjoint).
[[nodiscard]] std::vector<RunStatus> replay_component(
    const SubProblem& sub, const std::vector<ActionId>& sched,
    const Bitset& dropped, const Universe& pristine, Universe& working);

/// Solves one compacted component sub-problem and replays its best
/// configuration into `working` (see replay_component). Greedy construction
/// alone — no engine — when `allow_moves` is false or the component is a
/// singleton: a singleton's only move is the drop-flip, which can never
/// strictly improve the incumbent, so the engine's best would be the greedy
/// configuration anyway. With moves on, a LocalSearchEngine runs with the
/// canonical per-component seed `options.local_search.seed +
/// 0x9e3779b97f4a7c15 * sub.min_priority` — derived from the component's
/// minimum stream priority, which batch and streamed runs agree on.
/// `initial_digest` is universe_state_digest(pristine), computed once by
/// the caller. Work counters accumulate into `stats`.
[[nodiscard]] ComponentSolution solve_component(
    const SubProblem& sub, const Universe& pristine, Universe& working,
    const ReconcilerOptions& options, bool allow_moves,
    std::uint64_t initial_digest, const Deadline& deadline,
    SearchStats& stats);

/// Deterministic merge of per-component solutions: live parts are k-way
/// merged taking the component whose next element has the smallest stream
/// priority; frozen tails are merged the same way after every live part is
/// exhausted (mirroring the single-engine layout [live][frozen]). Appends
/// caller ids to `sequence`/`status`.
void merge_solutions(const std::vector<const ComponentSolution*>& parts,
                     const std::vector<ActionRecord>& records,
                     std::vector<ActionId>& sequence,
                     std::vector<RunStatus>& status);

}  // namespace icecube
