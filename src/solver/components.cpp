#include "solver/components.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "solver/local_search.hpp"

namespace icecube {

std::vector<std::vector<ActionId>> conflict_components(
    const std::vector<ActionRecord>& records, const SolverGraph& graph) {
  const std::size_t n = graph.n;
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::uint32_t next_label = 0;
  std::vector<ActionId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (label[s] != UINT32_MAX) continue;
    const std::uint32_t comp = next_label++;
    label[s] = comp;
    stack.push_back(ActionId(s));
    while (!stack.empty()) {
      const ActionId v = stack.back();
      stack.pop_back();
      for (ActionId w : graph.overlap_lists[v.index()]) {
        if (label[w.index()] == UINT32_MAX) {
          label[w.index()] = comp;
          stack.push_back(w);
        }
      }
    }
  }

  std::vector<std::vector<ActionId>> components(next_label);
  for (std::size_t i = 0; i < n; ++i) {
    components[label[i]].push_back(ActionId(i));
  }
  const auto by_priority = [&records](ActionId a, ActionId b) {
    return stream_priority(records[a.index()]) <
           stream_priority(records[b.index()]);
  };
  for (auto& members : components) {
    std::sort(members.begin(), members.end(), by_priority);
  }
  std::sort(components.begin(), components.end(),
            [&records](const std::vector<ActionId>& a,
                       const std::vector<ActionId>& b) {
              return stream_priority(records[a.front().index()]) <
                     stream_priority(records[b.front().index()]);
            });
  return components;
}

SubProblem extract_subproblem(const std::vector<ActionRecord>& records,
                              const SolverGraph& graph,
                              const std::vector<ActionId>& members) {
  SubProblem sub;
  sub.global_ids = members;
  std::sort(sub.global_ids.begin(), sub.global_ids.end(),
            [&records](ActionId a, ActionId b) {
              return stream_priority(records[a.index()]) <
                     stream_priority(records[b.index()]);
            });
  const std::size_t m = sub.global_ids.size();
  assert(m > 0);
  sub.min_priority = stream_priority(records[sub.global_ids[0].index()]);

  // Caller id → local id. A flat map would be O(n) per extraction; binary
  // search over the (small) sorted-by-priority member list keeps the cost
  // within the component. Members are not sorted by caller id, so build a
  // sorted view once.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> to_local;
  to_local.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    to_local.emplace_back(sub.global_ids[i].value(),
                          static_cast<std::uint32_t>(i));
  }
  std::sort(to_local.begin(), to_local.end());
  const auto local_of = [&to_local](ActionId global) {
    const auto it = std::lower_bound(
        to_local.begin(), to_local.end(),
        std::make_pair(global.value(), std::uint32_t{0}));
    assert(it != to_local.end() && it->first == global.value());
    return ActionId(it->second);
  };

  sub.records.reserve(m);
  sub.graph.n = m;
  sub.graph.preds.resize(m);
  sub.graph.succs.resize(m);
  sub.graph.overlap_lists.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t g = sub.global_ids[i].index();
    sub.records.push_back(records[g]);
    for (ActionId p : graph.preds[g]) {
      sub.graph.preds[i].push_back(local_of(p));
    }
    for (ActionId s : graph.succs[g]) {
      sub.graph.succs[i].push_back(local_of(s));
    }
    for (ActionId o : graph.overlap_lists[g]) {
      sub.graph.overlap_lists[i].push_back(local_of(o));
    }
    // Adjacency of a member stays within the component, but caller-id order
    // is not local-id order, so re-sort (the engine binary-searches these).
    std::sort(sub.graph.preds[i].begin(), sub.graph.preds[i].end());
    std::sort(sub.graph.succs[i].begin(), sub.graph.succs[i].end());
    std::sort(sub.graph.overlap_lists[i].begin(),
              sub.graph.overlap_lists[i].end());
  }
  return sub;
}

GreedyOrder greedy_order(const SolverGraph& graph) {
  const std::size_t m = graph.n;
  GreedyOrder out;
  std::vector<std::size_t> indegree(m, 0);
  for (std::size_t b = 0; b < m; ++b) indegree[b] = graph.preds[b].size();
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < m; ++i) {
    if (indegree[i] == 0) ready.push(static_cast<std::uint32_t>(i));
  }
  out.sched.reserve(m);
  while (!ready.empty()) {
    const ActionId id(ready.top());
    ready.pop();
    out.sched.push_back(id);
    for (ActionId s : graph.succs[id.index()]) {
      if (--indegree[s.index()] == 0) ready.push(s.value());
    }
  }
  out.live_end = out.sched.size();
  if (out.live_end < m) {
    // Cycle members: frozen at the tail in local-id order, like the engine.
    std::vector<bool> placed(m, false);
    for (ActionId id : out.sched) placed[id.index()] = true;
    for (std::size_t i = 0; i < m; ++i) {
      if (!placed[i]) out.sched.push_back(ActionId(i));
    }
  }
  return out;
}

std::vector<RunStatus> replay_component(const SubProblem& sub,
                                        const std::vector<ActionId>& sched,
                                        const Bitset& dropped,
                                        const Universe& pristine,
                                        Universe& working) {
  // Rewind the component's slots; everything else is untouched.
  std::vector<ObjectId> touched;
  for (const ActionRecord& rec : sub.records) {
    for (ObjectId t : rec.action->targets()) touched.push_back(t);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  const auto rewind = [&] {
    for (ObjectId t : touched) working.share_slot_from(pristine, t);
  };
  rewind();

  const std::size_t m = sched.size();
  std::vector<RunStatus> status(m, RunStatus::kDropped);
  std::vector<std::size_t> executed;
  for (std::size_t k = 0; k < m; ++k) {
    const ActionId id = sched[k];
    if (dropped.test(id.index())) continue;
    const Action& action = *sub.records[id.index()].action;
    if (!action.precondition(working)) {
      status[k] = RunStatus::kFailed;
      continue;
    }
    if (action.execute(working)) {
      status[k] = RunStatus::kExecuted;
      executed.push_back(k);
      continue;
    }
    // A failing execute may have partially mutated the component's slots;
    // rebuild them by replaying the executed prefix (deterministic, cannot
    // fail).
    rewind();
    for (std::size_t e : executed) {
      const Action& ea = *sub.records[sched[e].index()].action;
      const bool ok = ea.precondition(working) && ea.execute(working);
      assert(ok && "deterministic prefix replay failed");
      (void)ok;
    }
    status[k] = RunStatus::kFailed;
  }
  return status;
}

void merge_solutions(const std::vector<const ComponentSolution*>& parts,
                     const std::vector<ActionRecord>& records,
                     std::vector<ActionId>& sequence,
                     std::vector<RunStatus>& status) {
  // (next element's priority, part index) min-heap; two passes — live
  // parts, then frozen tails — so the merged layout matches the single
  // engine's [live][frozen].
  using Head = std::pair<std::uint64_t, std::size_t>;
  const auto priority_at = [&](const ComponentSolution& part, std::size_t k) {
    return stream_priority(records[part.sequence[k].index()]);
  };
  std::vector<std::size_t> cursor(parts.size(), 0);
  for (int pass = 0; pass < 2; ++pass) {
    std::priority_queue<Head, std::vector<Head>, std::greater<>> heads;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const std::size_t end =
          pass == 0 ? parts[p]->live_end : parts[p]->sequence.size();
      cursor[p] = pass == 0 ? 0 : parts[p]->live_end;
      if (cursor[p] < end) {
        heads.emplace(priority_at(*parts[p], cursor[p]), p);
      }
    }
    while (!heads.empty()) {
      const std::size_t p = heads.top().second;
      heads.pop();
      const ComponentSolution& part = *parts[p];
      const std::size_t k = cursor[p]++;
      sequence.push_back(part.sequence[k]);
      status.push_back(part.status[k]);
      const std::size_t end = pass == 0 ? part.live_end : part.sequence.size();
      if (cursor[p] < end) {
        heads.emplace(priority_at(part, cursor[p]), p);
      }
    }
  }
}

ComponentSolution solve_component(const SubProblem& sub,
                                  const Universe& pristine, Universe& working,
                                  const ReconcilerOptions& options,
                                  bool allow_moves,
                                  std::uint64_t initial_digest,
                                  const Deadline& deadline,
                                  SearchStats& stats) {
  ComponentSolution solution;
  solution.min_priority = sub.min_priority;
  const std::size_t m = sub.records.size();

  std::vector<ActionId> local_sched;
  Bitset local_dropped(m);
  if (!allow_moves || m == 1) {
    GreedyOrder greedy = greedy_order(sub.graph);
    for (std::size_t k = greedy.live_end; k < m; ++k) {
      local_dropped.set(greedy.sched[k].index());
    }
    solution.live_end = greedy.live_end;
    local_sched = std::move(greedy.sched);
    ++stats.schedules_completed;
  } else {
    LocalSearchOptions ls = options.local_search;
    ls.seed += 0x9e3779b97f4a7c15ULL * sub.min_priority;
    LocalSearchEngine engine(sub.records, sub.graph, pristine, Bitset(m), ls,
                             &initial_digest);
    const std::uint64_t budget =
        std::min<std::uint64_t>(ls.max_moves, options.limits.max_schedules);
    const std::uint64_t steps_left =
        options.limits.max_steps > stats.sim_steps
            ? options.limits.max_steps - stats.sim_steps
            : 0;
    stats.hit_limit |= engine.run(budget, deadline, steps_left);
    stats.schedules_completed += engine.evaluations();
    stats.sim_steps += engine.sim_steps();
    stats.moves_proposed += engine.proposals();
    stats.moves_accepted += engine.accepted();
    stats.state_clones += engine.snapshots_taken();
    local_sched = engine.best_schedule();
    local_dropped = engine.best_dropped();
    solution.live_end = engine.live_end();
  }

  solution.status =
      replay_component(sub, local_sched, local_dropped, pristine, working);
  stats.sim_steps += m;
  solution.sequence.reserve(m);
  for (ActionId local : local_sched) {
    solution.sequence.push_back(sub.global_ids[local.index()]);
  }
  ++stats.components_resolved;
  return solution;
}

}  // namespace icecube
