// Pluggable solver backends (DESIGN.md §13).
//
// A backend turns one reconciliation problem — action records, constraints,
// an initial universe, optional cutsets — into outcomes offered to the
// shared Selection. Three are registered:
//
//   kDfs          the paper's exhaustive cutset DFS, migrated verbatim from
//                 Reconciler::run (bit-for-bit identical schedules for a
//                 fixed seed/thread count; parallel_driver and
//                 CandidateScheduler untouched)
//   kGreedy       one topological construction + replay-with-skip; the
//                 scalable floor every other backend must beat
//   kLocalSearch  seeded simulated-annealing/tabu over schedule permutations
//                 with incremental suffix re-simulation (local_search.hpp)
//   kAuto         DFS where it is affordable (cutsets no larger than
//                 ReconcilerOptions::auto_dfs_max_actions — the optimality
//                 oracle), local search everywhere else
//
// The DFS backend consumes the dense Relations and runs one search per
// proper cutset; the greedy/local-search backends consume the sparse
// SolverGraph and treat dependence cycles by freezing the cycle members out
// of the schedule (they land in Outcome::skipped), so they need neither the
// transitive closure nor the cutset analysis.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/relations.hpp"
#include "core/selection.hpp"
#include "core/universe.hpp"
#include "solver/graph.hpp"
#include "util/bitset.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Everything a backend needs for one solve. All pointers are non-owning
/// and must outlive the call; fields irrelevant to a backend may be null as
/// documented per member.
struct SolveContext {
  const std::vector<ActionRecord>* records = nullptr;
  const Universe* initial = nullptr;
  const ReconcilerOptions* options = nullptr;
  Policy* policy = nullptr;
  const Deadline* deadline = nullptr;
  const Stopwatch* clock = nullptr;

  /// Dense relations + proper cutsets: required by kDfs and kAuto, null on
  /// the sparse path.
  const Relations* relations = nullptr;
  const std::vector<Cutset>* cutsets = nullptr;
  /// Sparse adjacency graph: required by kGreedy/kLocalSearch on the sparse
  /// path; kAuto derives one from `relations` on demand.
  const SolverGraph* graph = nullptr;

  /// Worker pool for the DFS parallel driver (null = sequential). The
  /// greedy/local-search backends are single-threaded by construction —
  /// their determinism is thread-count-invariant trivially.
  ThreadPool* pool = nullptr;
  /// §6 target-overlap bitsets for DFS failure memoization; null when off.
  const std::vector<Bitset>* target_overlap = nullptr;
};

/// One solver strategy. Implementations append outcomes to `selection` and
/// fold their work counters into `stats` (`stats.backend` is set by the
/// caller, not the backend).
class SolverBackend {
 public:
  SolverBackend() = default;
  SolverBackend(const SolverBackend&) = default;
  SolverBackend& operator=(const SolverBackend&) = default;
  SolverBackend(SolverBackend&&) = default;
  SolverBackend& operator=(SolverBackend&&) = default;
  virtual ~SolverBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  virtual void solve(const SolveContext& ctx, Selection& selection,
                     SearchStats& stats) = 0;
};

/// Backend registry keyed by the options enum.
[[nodiscard]] std::unique_ptr<SolverBackend> make_solver_backend(
    SolverKind kind);

}  // namespace icecube
