#include "solver/backend.hpp"

#include "solver/dfs_backend.hpp"
#include "solver/local_search.hpp"

namespace icecube {

namespace {

/// DFS where it is affordable, local search where it is not. Runs on the
/// dense path only (it needs the relations and the cutset analysis): each
/// proper cutset whose schedulable remainder fits under
/// `auto_dfs_max_actions` is searched exhaustively — the optimality oracle —
/// and the rest go to the annealer.
class AutoBackend final : public SolverBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "auto"; }

  void solve(const SolveContext& ctx, Selection& selection,
             SearchStats& stats) override {
    const std::size_t n = ctx.records->size();
    std::vector<Cutset> small;
    std::vector<Cutset> large;
    for (const Cutset& cutset : *ctx.cutsets) {
      const std::size_t schedulable = n - cutset.size();
      if (schedulable <= ctx.options->auto_dfs_max_actions) {
        small.push_back(cutset);
      } else {
        large.push_back(cutset);
      }
    }
    if (!small.empty()) {
      SolveContext sub = ctx;
      sub.cutsets = &small;
      DfsBackend dfs;
      dfs.solve(sub, selection, stats);
    }
    if (!large.empty()) {
      SolveContext sub = ctx;
      sub.cutsets = &large;
      LocalSearchBackend annealer;
      annealer.solve(sub, selection, stats);
    }
  }
};

}  // namespace

std::unique_ptr<SolverBackend> make_solver_backend(SolverKind kind) {
  switch (kind) {
    case SolverKind::kDfs:
      return std::make_unique<DfsBackend>();
    case SolverKind::kGreedy:
      return std::make_unique<GreedyBackend>();
    case SolverKind::kLocalSearch:
      return std::make_unique<LocalSearchBackend>();
    case SolverKind::kAuto:
      return std::make_unique<AutoBackend>();
  }
  return std::make_unique<DfsBackend>();
}

}  // namespace icecube
