// Umbrella header: the whole IceCube public API in one include.
//
//   #include "icecube.hpp"
//
// For finer-grained builds include the individual headers; this header is
// for applications and quick experiments.
#pragma once

// Engine.
#include "core/action.hpp"          // Action, SimpleAction, ActionPtr
#include "core/constraint.hpp"      // Constraint {safe, maybe, unsafe}
#include "core/constraint_builder.hpp"
#include "core/cutset.hpp"          // proper cutsets
#include "core/cycles.hpp"          // dependence-cycle analysis
#include "core/conflict_report.hpp" // conflict explanation
#include "core/graphviz.hpp"        // DOT export
#include "core/incremental.hpp"     // IncrementalReconciler (anytime mode)
#include "core/log.hpp"             // Log, ActionRecord
#include "core/options.hpp"         // Heuristic, FailureMode, options
#include "core/outcome.hpp"         // Outcome, SearchStats
#include "core/policies.hpp"        // MaxActions/Protect/Parcel/Trace
#include "core/policy.hpp"          // the §3.5 hook interface
#include "core/reconciler.hpp"      // Reconciler — the main entry point
#include "core/relations.hpp"       // D and I
#include "core/universe.hpp"        // SharedObject, Universe

// Substrates.
#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"

// Applications and tooling.
#include "baseline/algebraic_sync.hpp"
#include "baseline/cvs_merge.hpp"
#include "baseline/greedy_insertion.hpp"
#include "baseline/temporal_merge.hpp"
#include "jigsaw/experiment.hpp"
#include "logclean/cleaner.hpp"
#include "replica/gossip.hpp"
#include "replica/site.hpp"
#include "replica/sync.hpp"
#include "serialize/gossip_codec.hpp"
#include "serialize/log_codec.hpp"
#include "serialize/universe_codec.hpp"
#include "simnet/chaos.hpp"
#include "simnet/invariants.hpp"
#include "simnet/simnet.hpp"
#include "workload/generators.hpp"
