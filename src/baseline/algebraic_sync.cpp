#include "baseline/algebraic_sync.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "objects/file_system.hpp"

namespace icecube {

namespace {

enum class OpKind : std::uint8_t { kMkdir, kWrite, kDelete };

struct Op {
  OpKind kind;
  std::string path;
  std::string content;  // writes only
  ActionId id;
  LogId log;
  bool excluded = false;
  bool duplicate = false;
};

OpKind kind_of(const Tag& tag) {
  if (tag.op == "mkdir") return OpKind::kMkdir;
  if (tag.op == "fswrite") return OpKind::kWrite;
  assert(tag.op == "fsdelete" && "algebraic sync handles fs actions only");
  return OpKind::kDelete;
}

std::size_t depth(const std::string& path) {
  return static_cast<std::size_t>(
      std::count(path.begin(), path.end(), '/'));
}

bool related(const Op& a, const Op& b) {
  return fspath::covers(a.path, b.path) || fspath::covers(b.path, a.path);
}

/// Do two concurrent operations on *related* paths conflict statically?
bool conflicts(const Op& a, const Op& b) {
  if (a.path == b.path) {
    if (a.kind != b.kind) return true;  // e.g. write vs delete of one path
    switch (a.kind) {
      case OpKind::kMkdir:
        return false;  // identical creations are idempotent
      case OpKind::kDelete:
        return false;  // both want it gone
      case OpKind::kWrite:
        return a.content != b.content;  // divergent contents conflict
    }
  }
  // Ancestor-related, distinct paths: a delete of the ancestor conflicts
  // with concurrent work at or below it; creations chain harmlessly
  // (parents first), and a delete of a descendant composes with anything
  // above it.
  const Op& up = fspath::covers(a.path, b.path) ? a : b;
  const Op& down = (&up == &a) ? b : a;
  if (up.kind == OpKind::kDelete) {
    return down.kind == OpKind::kMkdir || down.kind == OpKind::kWrite;
  }
  return false;
}

}  // namespace

AlgebraicSyncReport algebraic_fs_sync(const Universe& initial,
                                      const std::vector<Log>& logs,
                                      ObjectId fs) {
  AlgebraicSyncReport report;
  const std::vector<ActionRecord> records = flatten(logs);

  std::vector<Op> ops;
  ops.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Tag& tag = records[i].action->tag();
    Op op;
    op.kind = kind_of(tag);
    op.path = tag.str_param(0);
    if (op.kind == OpKind::kWrite) op.content = tag.str_param(1);
    op.id = ActionId(i);
    op.log = records[i].log;
    ops.push_back(std::move(op));
  }

  // Clean-log assumption: "no more than one operation affecting a given
  // object" per log. (Creating a directory and then a child inside it is
  // fine — that is the ancestor dependency the canonical order handles.)
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[i].log == ops[j].log && ops[i].path == ops[j].path) {
        report.clean = false;
      }
    }
  }

  // Cross-log analysis: duplicates collapse (idempotence), conflicts
  // exclude both members.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (ops[i].log == ops[j].log) continue;
      if (!related(ops[i], ops[j])) continue;
      if (conflicts(ops[i], ops[j])) {
        report.conflicts.emplace_back(ops[i].id, ops[j].id);
        ops[i].excluded = true;
        ops[j].excluded = true;
      } else if (ops[i].path == ops[j].path && ops[i].kind == ops[j].kind &&
                 ops[i].content == ops[j].content) {
        if (!ops[j].duplicate && !ops[i].duplicate) {
          ops[j].duplicate = true;
          report.duplicates.push_back(ops[j].id);
        }
      }
    }
  }

  // Canonical order: creations parents-first, then writes, then deletions
  // children-first; ties broken lexicographically (arbitrary but
  // consistent).
  std::vector<const Op*> schedule;
  for (const Op& op : ops) {
    if (!op.excluded && !op.duplicate) schedule.push_back(&op);
  }
  std::sort(schedule.begin(), schedule.end(), [](const Op* a, const Op* b) {
    if (a->kind != b->kind) return a->kind < b->kind;
    if (a->kind == OpKind::kDelete) {
      if (depth(a->path) != depth(b->path)) {
        return depth(a->path) > depth(b->path);
      }
    } else if (depth(a->path) != depth(b->path)) {
      return depth(a->path) < depth(b->path);
    }
    if (a->path != b->path) return a->path < b->path;
    return a->id < b->id;
  });

  report.final_state = initial;
  for (const Op* op : schedule) {
    auto& tree = report.final_state.as<FileSystem>(fs);
    bool ok = false;
    switch (op->kind) {
      case OpKind::kMkdir:
        ok = tree.mkdir(op->path) || tree.is_dir(op->path);
        break;
      case OpKind::kWrite:
        ok = tree.write(op->path, op->content);
        break;
      case OpKind::kDelete:
        ok = tree.remove(op->path) || !tree.exists(op->path);
        break;
    }
    if (ok) report.applied.push_back(op->id);
  }
  return report;
}

}  // namespace icecube
