// Algebraic file synchronisation — the Ramsey & Csirmaz baseline of §5.
//
// "Operations on files are carefully crafted to make them almost entirely
// independent and idempotent. The only dependencies are between an object
// (file or directory) and the existence of its ancestor directories. A log
// is assumed clean ... This allows them to define a canonical ordering
// between operations such that reconciliation has a unique, static
// solution: non-commutative operations appear in their natural order, and
// commutative operations are ordered arbitrarily but consistently."
//
// This module reproduces that scheme on the FileSystem substrate:
//  - static conflict detection over tag pairs (same path with different
//    effects; a delete against concurrent work below it);
//  - deduplication of identical concurrent operations (idempotence);
//  - the canonical order: directory creations parents-first, then writes,
//    then deletions children-first — no search, a unique static solution.
//
// Its limits are exactly what motivates IceCube: no dynamic stage, no
// reordering search, conflicts simply excluded.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/log.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Result of one algebraic synchronisation.
struct AlgebraicSyncReport {
  Universe final_state;
  /// Flattened ids applied, in canonical order (after dedup/exclusion).
  std::vector<ActionId> applied;
  /// Cross-log statically-conflicting pairs; both members are excluded.
  std::vector<std::pair<ActionId, ActionId>> conflicts;
  /// Ids dropped as duplicates of an applied operation (idempotence).
  std::vector<ActionId> duplicates;
  /// False if some log violates the clean-log assumption (two operations on
  /// related paths in one log); the merge still proceeds best-effort.
  bool clean = true;
};

/// Synchronises file-system logs algebraically. All actions must target the
/// FileSystem object `fs` and be mkdir/fswrite/fsdelete actions.
[[nodiscard]] AlgebraicSyncReport algebraic_fs_sync(
    const Universe& initial, const std::vector<Log>& logs, ObjectId fs);

}  // namespace icecube
