#include "baseline/temporal_merge.hpp"

#include <algorithm>

namespace icecube {

MergeReport temporal_merge(const Universe& initial,
                           const std::vector<Log>& logs, MergeOrder order) {
  // Build the attempted order over flattened ids (log-major flattening, as
  // in `flatten`).
  std::vector<std::size_t> offsets;
  std::size_t total = 0;
  for (const auto& log : logs) {
    offsets.push_back(total);
    total += log.size();
  }

  MergeReport report;
  report.attempted.reserve(total);
  switch (order) {
    case MergeOrder::kConcatenate:
      for (std::size_t li = 0; li < logs.size(); ++li) {
        for (std::size_t p = 0; p < logs[li].size(); ++p) {
          report.attempted.push_back(ActionId(offsets[li] + p));
        }
      }
      break;
    case MergeOrder::kRoundRobin: {
      std::size_t longest = 0;
      for (const auto& log : logs) longest = std::max(longest, log.size());
      for (std::size_t p = 0; p < longest; ++p) {
        for (std::size_t li = 0; li < logs.size(); ++li) {
          if (p < logs[li].size()) {
            report.attempted.push_back(ActionId(offsets[li] + p));
          }
        }
      }
      break;
    }
  }

  const std::vector<ActionRecord> records = flatten(logs);
  report.final_state = initial;
  for (ActionId id : report.attempted) {
    const Action& action = *records[id.index()].action;
    bool ok = false;
    if (action.precondition(report.final_state)) {
      // Execute against a shadow copy so a failed operation cannot leave a
      // half-applied state behind (same discipline as the simulator).
      Universe shadow = report.final_state;
      if (action.execute(shadow)) {
        report.final_state = std::move(shadow);
        ok = true;
      }
    }
    if (ok) {
      ++report.applied;
    } else {
      ++report.conflicts;
    }
  }
  return report;
}

}  // namespace icecube
