#include "baseline/cvs_merge.hpp"

#include <map>
#include <optional>
#include <string>

#include "objects/line_file.hpp"

namespace icecube {

CvsMergeReport cvs_merge(const Universe& initial, const std::vector<Log>& logs,
                         ObjectId file) {
  CvsMergeReport report;
  report.final_state = initial;
  auto& merged = report.final_state.as<LineFile>(file);

  // Final intended content per line, per session (a session's later edit of
  // a line supersedes its earlier one — CVS ships working-copy state).
  std::map<std::size_t, std::vector<std::string>> intents;
  for (const Log& log : logs) {
    std::map<std::size_t, std::string> session_final;
    for (const auto& action : log) {
      const Tag& tag = action->tag();
      session_final[static_cast<std::size_t>(tag.param(0))] =
          tag.str_param(1);  // the replacement text
    }
    for (auto& [line, text] : session_final) {
      intents[line].push_back(text);
    }
  }

  for (const auto& [line, texts] : intents) {
    std::optional<std::string> agreed = texts.front();
    for (const auto& text : texts) {
      if (text != *agreed) {
        agreed.reset();
        break;
      }
    }
    if (agreed && merged.set_line(line, *agreed)) {
      ++report.applied;
    } else {
      report.conflicts.push_back(line);  // divergent or out of range
    }
  }
  return report;
}

}  // namespace icecube
