#include "baseline/greedy_insertion.hpp"

#include <optional>

namespace icecube {

namespace {

/// Replays `schedule` from `initial`; returns the final state if every
/// action succeeds, nullopt otherwise.
std::optional<Universe> replay(const Universe& initial,
                               const std::vector<ActionRecord>& records,
                               const std::vector<ActionId>& schedule) {
  Universe state = initial;
  for (ActionId id : schedule) {
    const Action& action = *records[id.index()].action;
    if (!action.precondition(state)) return std::nullopt;
    if (!action.execute(state)) return std::nullopt;
  }
  return state;
}

}  // namespace

GreedyReport greedy_insertion_merge(const Universe& initial,
                                    const std::vector<Log>& logs) {
  GreedyReport report;
  const std::vector<ActionRecord> records = flatten(logs);

  // Primary schedule: log 0 as recorded. Its actions always replay (a log
  // is correct), but verify anyway and drop stragglers defensively.
  std::size_t primary_size = logs.empty() ? 0 : logs[0].size();
  std::vector<ActionId> schedule;
  for (std::size_t i = 0; i < primary_size; ++i) {
    schedule.push_back(ActionId(i));
  }
  ++report.replays;
  if (!replay(initial, records, schedule)) {
    schedule.clear();  // degenerate input; rebuild action by action
    for (std::size_t i = 0; i < primary_size; ++i) {
      schedule.push_back(ActionId(i));
      ++report.replays;
      if (!replay(initial, records, schedule)) {
        schedule.pop_back();
        ++report.dropped;
      }
    }
  }

  // Insert every further action at the first position that keeps the whole
  // schedule replayable.
  std::size_t offset = primary_size;
  for (std::size_t li = 1; li < logs.size(); ++li) {
    for (std::size_t p = 0; p < logs[li].size(); ++p) {
      const ActionId incoming(offset + p);
      bool placed = false;
      for (std::size_t pos = 0; pos <= schedule.size() && !placed; ++pos) {
        std::vector<ActionId> candidate = schedule;
        candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                         incoming);
        ++report.replays;
        if (replay(initial, records, candidate)) {
          schedule = std::move(candidate);
          placed = true;
        }
      }
      if (!placed) ++report.dropped;
    }
    offset += logs[li].size();
  }

  auto final_state = replay(initial, records, schedule);
  report.final_state = final_state ? std::move(*final_state) : initial;
  report.schedule = std::move(schedule);
  return report;
}

}  // namespace icecube
