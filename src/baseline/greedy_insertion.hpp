// Greedy incremental insertion — the Phatak & Badrinath-style baseline
// discussed in §5.
//
// "They present an incremental algorithm ... for incorporating disconnected
// transactions into a schedule. It inserts each such transaction into the
// schedule at an optimal position ... One key difference is that their
// preconditions are based purely on read-sets and write-sets ... Another is
// that they assume transactions are independent ... Finally, [their]
// algorithm lacks a scheduling phase, which we found essential to fight
// combinatorial explosion."
//
// This module reproduces the *shape* of that algorithm on IceCube's action
// model: start from the primary log's schedule and insert each further
// action, one at a time and in log order, at the first position where the
// whole schedule still replays; drop it if no position works. No search, no
// static constraints — each insertion is O(n) replays.
#pragma once

#include <cstddef>
#include <vector>

#include "core/log.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Result of a greedy-insertion merge.
struct GreedyReport {
  Universe final_state;
  /// Flattened action ids (log-major, as in `flatten`) in schedule order.
  std::vector<ActionId> schedule;
  std::size_t dropped = 0;  ///< actions with no working insertion point
  std::size_t replays = 0;  ///< full-schedule replays performed (cost proxy)
};

/// Merges `logs` into one schedule by greedy insertion, starting from
/// `logs[0]` as the primary. Returns the final state of the best-effort
/// schedule.
[[nodiscard]] GreedyReport greedy_insertion_merge(const Universe& initial,
                                                  const std::vector<Log>& logs);

}  // namespace icecube
