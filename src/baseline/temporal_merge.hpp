// Predetermined-order log merge — the baseline IceCube argues against
// (§1.1, §5).
//
// Systems like Bayou replay actions in a fixed order (e.g. tentative
// timestamp order), checking each action's dependency check (precondition)
// and invoking conflict resolution when it fails. This module reproduces
// that behaviour: it merges logs in a predetermined order and drops (counts)
// every action whose precondition or execution fails, with no search for a
// better ordering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/log.hpp"
#include "core/universe.hpp"

namespace icecube {

/// How the baseline interleaves the input logs.
enum class MergeOrder : std::uint8_t {
  kConcatenate,  ///< log 0 in full, then log 1, ...
  kRoundRobin    ///< position 0 of every log, then position 1, ... (a proxy
                 ///< for timestamp order under similar activity rates)
};

/// Result of one predetermined-order merge.
struct MergeReport {
  Universe final_state;
  std::size_t applied = 0;    ///< actions executed successfully
  std::size_t conflicts = 0;  ///< actions dropped (precondition/execution
                              ///< failure — Bayou would call mergeproc)
  /// Flattened-action ids in attempted order (successful and failed).
  std::vector<ActionId> attempted;
};

/// Replays all logs against `initial` in the given predetermined order.
[[nodiscard]] MergeReport temporal_merge(const Universe& initial,
                                         const std::vector<Log>& logs,
                                         MergeOrder order);

}  // namespace icecube
