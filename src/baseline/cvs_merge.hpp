// Three-way line merge — the CVS baseline of §1.1.
//
// Classic diff3 over `SetLineAction` logs: for each line, collect every
// session's final intended content; lines touched by one session adopt its
// text, lines touched by several sessions with the same final text merge
// silently, and divergent final texts are conflicts (the line keeps its
// base content and is reported). No ordering search, no preconditions —
// the whole merge is a static function of the per-line last writes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/log.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

struct CvsMergeReport {
  Universe final_state;
  std::size_t applied = 0;              ///< line updates adopted
  std::vector<std::size_t> conflicts;   ///< line numbers left unresolved
};

/// Merges `SetLineAction` logs against the `LineFile` at `file` in
/// `initial`.
[[nodiscard]] CvsMergeReport cvs_merge(const Universe& initial,
                                       const std::vector<Log>& logs,
                                       ObjectId file);

}  // namespace icecube
