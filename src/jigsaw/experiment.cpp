#include "jigsaw/experiment.hpp"

#include <cassert>
#include <memory>

namespace icecube::jigsaw {

Problem make_problem(int rows, int cols, Board::OrderCase order_case,
                     const std::vector<PlayerSpec>& players,
                     ScenarioOptions scenario_opts) {
  Problem problem;
  Board prototype(rows, cols, order_case);
  problem.board_id = problem.initial.add(prototype.clone());
  assert(problem.board_id == ObjectId(0) &&
         "scenario generators assume the board occupies slot 0");

  int player_index = 0;
  for (const PlayerSpec& spec : players) {
    Log log;
    switch (spec.kind) {
      case PlayerSpec::Kind::kU1:
        log = scenario_u1(prototype, problem.board_id, spec.amount,
                          scenario_opts);
        break;
      case PlayerSpec::Kind::kU2:
        log = scenario_u2(prototype, problem.board_id, spec.amount,
                          scenario_opts);
        break;
      case PlayerSpec::Kind::kU3:
        log = scenario_u3(prototype, problem.board_id, spec.amount, spec.seed,
                          scenario_opts);
        break;
    }
    Log named(log.name() + "-p" + std::to_string(player_index++));
    for (const auto& a : log) named.append(a);
    problem.logs.push_back(std::move(named));
  }
  return problem;
}

Criteria evaluate(const Problem& problem, const Outcome& outcome) {
  const auto& board = outcome.final_state.as<Board>(problem.board_id);
  return Criteria{static_cast<int>(outcome.schedule.size()),
                  board.pieces_on_board(), board.correct_pieces()};
}

ExperimentResult run_experiment(const Problem& problem,
                                const ReconcilerOptions& options) {
  JigsawPolicy policy(problem.board_id);
  Reconciler reconciler(problem.initial, problem.logs, options, &policy);
  const ReconcileResult result = reconciler.run();

  ExperimentResult summary;
  summary.stats = result.stats;
  summary.outcome_count = result.outcomes.size();
  if (result.found_any()) {
    summary.best = evaluate(problem, result.best());
    summary.best_complete = result.best().complete;
  }
  return summary;
}

}  // namespace icecube::jigsaw
