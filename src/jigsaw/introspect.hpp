// Audit subject for the jigsaw substrate (see core/audit.hpp).
//
// Only the *semantic* order method (Case 1, Figures 7–8) makes honesty
// claims the auditor can hold it to; Cases 2–4 are policy regimes whose
// verdicts encode user preference, not dynamic safety, so they are not
// shipped as audit subjects (auditing Case 4's adjacency preference, for
// instance, would correctly flag its deliberate "likely safe" heuristic).
#pragma once

#include "core/audit.hpp"
#include "jigsaw/board.hpp"

namespace icecube::jigsaw {

/// Subject exercising a rows×cols board under the given order case.
[[nodiscard]] AuditSubject board_audit_subject(
    Board::OrderCase order_case = Board::OrderCase::kSemantic, int rows = 2,
    int cols = 2);

}  // namespace icecube::jigsaw
