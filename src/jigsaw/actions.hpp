// Jigsaw actions (§4.1): insert, join, remove.
//
// Tags encode the action type and piece/edge parameters so that order
// methods (Figures 7–8 and the policy cases) can evaluate constraints
// statically.
#pragma once

#include <cstdint>

#include "core/action.hpp"
#include "jigsaw/board.hpp"

namespace icecube::jigsaw {

/// Places an available piece at its home cell.
///
/// The paper only says the board "has been initialised with a single
/// insert"; the precondition is configurable (DESIGN.md §5.4):
///  - default: the piece is available and its home cell is free;
///  - strict:  additionally the board must be empty (at most one insert can
///             ever succeed in a replayed schedule).
class InsertAction final : public Action {
 public:
  InsertAction(ObjectId board, int piece, bool strict = false)
      : tag_(strict ? "insert!" : "insert", {piece}),
        board_(board),
        piece_(piece),
        strict_(strict) {}

  [[nodiscard]] std::vector<ObjectId> targets() const override {
    return {board_};
  }
  [[nodiscard]] const Tag& tag() const override { return tag_; }
  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

  [[nodiscard]] int piece() const { return piece_; }

 private:
  Tag tag_;
  ObjectId board_;
  int piece_;
  bool strict_;
};

/// join(Pi, ei, Pj, ej): joins edge `ei` of `Pi` to edge `ej` of `Pj`,
/// moving whichever of the two is available onto the board (§4.1).
///
/// Precondition (verbatim from the paper): (i) the board is not empty,
/// (ii) either Pi or Pj is available (but not both), (iii) edge ei of Pi and
/// edge ej of Pj are not already taken. Execution additionally fails if the
/// edges are not geometrically opposite or the destination cell is occupied
/// (the "laws of physics").
class JoinAction final : public Action {
 public:
  JoinAction(ObjectId board, int pi, Edge ei, int pj, Edge ej)
      : tag_("join", {pi, static_cast<std::int64_t>(ei), pj,
                      static_cast<std::int64_t>(ej)}),
        board_(board),
        pi_(pi),
        ei_(ei),
        pj_(pj),
        ej_(ej) {}

  [[nodiscard]] std::vector<ObjectId> targets() const override {
    return {board_};
  }
  [[nodiscard]] const Tag& tag() const override { return tag_; }
  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

  [[nodiscard]] int pi() const { return pi_; }
  [[nodiscard]] Edge ei() const { return ei_; }
  [[nodiscard]] int pj() const { return pj_; }
  [[nodiscard]] Edge ej() const { return ej_; }

 private:
  Tag tag_;
  ObjectId board_;
  int pi_;
  Edge ei_;
  int pj_;
  Edge ej_;
};

/// remove(Pi): moves a placed piece off the board, making it available.
class RemoveAction final : public Action {
 public:
  RemoveAction(ObjectId board, int piece)
      : tag_("remove", {piece}), board_(board), piece_(piece) {}

  [[nodiscard]] std::vector<ObjectId> targets() const override {
    return {board_};
  }
  [[nodiscard]] const Tag& tag() const override { return tag_; }
  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

  [[nodiscard]] int piece() const { return piece_; }

 private:
  Tag tag_;
  ObjectId board_;
  int piece_;
};

/// Builds the correct join that attaches available piece `new_piece` to
/// placed neighbour `anchor` according to their home cells. Asserts the two
/// homes are adjacent.
[[nodiscard]] JoinAction correct_join(const Board& board, ObjectId board_id,
                                      int anchor, int new_piece);

}  // namespace icecube::jigsaw
