// User scenarios for the jigsaw experiments (§4.2).
//
//  U1 — joins correct pieces, left to right, row by row downwards, starting
//       from square 0.
//  U2 — symmetric: right to left and upwards, starting from the last square.
//  U3 — a random sequence of correct and incorrect joins and removes,
//       strongly biased towards correct moves, starting from square 0.
//
// Every generated log is *correct* in the paper's sense: it was successfully
// executed against a private replica of the (initially empty) board.
#pragma once

#include <cstdint>

#include "core/log.hpp"
#include "core/universe.hpp"
#include "jigsaw/actions.hpp"
#include "jigsaw/board.hpp"

namespace icecube::jigsaw {

struct ScenarioOptions {
  /// Use the strict "board must be empty" insert precondition (DESIGN.md
  /// §5.4). Affects replay during reconciliation, not isolated execution.
  bool strict_insert = false;
};

/// U1: places `pieces` pieces (one insert + pieces-1 correct joins).
[[nodiscard]] Log scenario_u1(const Board& board, ObjectId board_id,
                              int pieces, ScenarioOptions opts = {});

/// U2: places `pieces` pieces starting from the last square, right to left
/// and upwards.
[[nodiscard]] Log scenario_u2(const Board& board, ObjectId board_id,
                              int pieces, ScenarioOptions opts = {});

/// U3: records `actions` successful random moves (~80% correct joins,
/// ~10% removes, ~10% physically-possible incorrect joins).
[[nodiscard]] Log scenario_u3(const Board& board, ObjectId board_id,
                              int actions, std::uint64_t seed,
                              ScenarioOptions opts = {});

/// Replays `log` against a fresh universe containing only a copy of `board`;
/// returns the number of actions that executed successfully. Generators use
/// this invariant-check internally; exposed for tests.
[[nodiscard]] int replay_count(const Board& board, const Log& log);

}  // namespace icecube::jigsaw
