// Collaborative jigsaw puzzle state (§4.1).
//
// A game is a fixed set of n×m pieces, each either *available* or *on the
// board* at some cell. Piece p's home cell is (p / cols, p % cols); a state
// is correct when every placed piece sits at its home. Players grow the
// board with `insert` / `join` and shrink it with `remove`.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/universe.hpp"

namespace icecube::jigsaw {

/// Square-piece edge. Joining requires opposite edges (left↔right,
/// top↔bottom).
enum class Edge : std::uint8_t { kTop = 0, kRight = 1, kBottom = 2, kLeft = 3 };

[[nodiscard]] constexpr Edge opposite(Edge e) {
  switch (e) {
    case Edge::kTop:
      return Edge::kBottom;
    case Edge::kRight:
      return Edge::kLeft;
    case Edge::kBottom:
      return Edge::kTop;
    case Edge::kLeft:
      return Edge::kRight;
  }
  return Edge::kTop;
}

[[nodiscard]] constexpr std::string_view to_string(Edge e) {
  switch (e) {
    case Edge::kTop:
      return "top";
    case Edge::kRight:
      return "right";
    case Edge::kBottom:
      return "bottom";
    case Edge::kLeft:
      return "left";
  }
  return "?";
}

/// Board cell. Placed pieces can sit anywhere on the plane (an incorrect
/// join may push a piece outside the picture frame), so coordinates are
/// signed.
struct Cell {
  int row = 0;
  int col = 0;
  friend bool operator==(Cell, Cell) = default;
  friend auto operator<=>(Cell, Cell) = default;
};

/// Neighbouring cell across edge `e` of a piece at `c`.
[[nodiscard]] constexpr Cell neighbour(Cell c, Edge e) {
  switch (e) {
    case Edge::kTop:
      return {c.row - 1, c.col};
    case Edge::kRight:
      return {c.row, c.col + 1};
    case Edge::kBottom:
      return {c.row + 1, c.col};
    case Edge::kLeft:
      return {c.row, c.col - 1};
  }
  return c;
}

/// The shared jigsaw object. One instance represents the whole game; every
/// jigsaw action targets it, so its `order` method sees every action pair —
/// which order method applies (semantic Case 1 or policy Cases 2–4) is
/// selected at construction (§4.2).
class Board final : public SharedObject {
 public:
  /// Which static-constraint regime the object's `order` method implements.
  enum class OrderCase : std::uint8_t {
    kUnconstrained = 0,///< no static constraints at all (§4.3's baseline)
    kSemantic = 1,     ///< Case 1: rules of the game + laws of physics
    kKeepLogOrder = 2, ///< Case 2: preserve each player's log order
    kKeepJoinOrder = 3,///< Case 3: preserve log order among joins only
    kAdjacency = 4     ///< Case 4: Case 3 + prefer adjacent-join strings
  };

  Board(int rows, int cols, OrderCase order_case = OrderCase::kSemantic);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int piece_count() const { return rows_ * cols_; }

  /// Home cell of piece `p` (row-major numbering).
  [[nodiscard]] Cell home(int piece) const {
    return {piece / cols_, piece % cols_};
  }

  [[nodiscard]] bool available(int piece) const {
    return !position_[static_cast<std::size_t>(piece)].has_value();
  }
  [[nodiscard]] bool on_board(int piece) const { return !available(piece); }
  [[nodiscard]] std::optional<Cell> position(int piece) const {
    return position_[static_cast<std::size_t>(piece)];
  }
  [[nodiscard]] std::optional<int> piece_at(Cell c) const;
  [[nodiscard]] bool board_empty() const { return occupancy_.empty(); }

  /// Edge `e` of placed piece `p` is taken iff the adjacent cell is occupied.
  [[nodiscard]] bool edge_taken(int piece, Edge e) const;

  void place(int piece, Cell c);
  void take_off(int piece);

  /// Evaluation criteria of §4.3.
  [[nodiscard]] int pieces_on_board() const {
    return static_cast<int>(occupancy_.size());
  }
  [[nodiscard]] int correct_pieces() const;

  [[nodiscard]] OrderCase order_case() const { return order_case_; }
  void set_order_case(OrderCase c) { order_case_ = c; }

  // SharedObject interface.
  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<Board>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(Board) + position_.size() * sizeof(position_[0]) +
           occupancy_.size() * (sizeof(Cell) + sizeof(int));
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string fingerprint() const override;

  /// ASCII rendering for demos: home pieces as numbers, misplaced as '!'.
  [[nodiscard]] std::string render() const;

 private:
  int rows_;
  int cols_;
  OrderCase order_case_;
  std::vector<std::optional<Cell>> position_;  // per piece
  std::map<Cell, int> occupancy_;              // cell -> piece
};

}  // namespace icecube::jigsaw
