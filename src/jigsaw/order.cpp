#include "jigsaw/order.hpp"

#include <algorithm>

#include "core/tag.hpp"

namespace icecube::jigsaw {

namespace {

// Tag decoding. Tags are the only information an order method may consult —
// this is what makes the resulting constraints static.

bool is_join(const Tag& t) { return t.op == "join"; }
bool is_remove(const Tag& t) { return t.op == "remove"; }
bool is_insert(const Tag& t) { return t.op == "insert" || t.op == "insert!"; }

struct JoinTag {
  int pi;
  Edge ei;
  int pj;
  Edge ej;
};

JoinTag decode_join(const Tag& t) {
  return {static_cast<int>(t.param(0)), static_cast<Edge>(t.param(1)),
          static_cast<int>(t.param(2)), static_cast<Edge>(t.param(3))};
}

/// Pieces an action mentions (one for insert/remove, two for join).
std::vector<int> pieces_of(const Tag& t) {
  if (is_join(t)) {
    const JoinTag j = decode_join(t);
    return {j.pi, j.pj};
  }
  return {static_cast<int>(t.param(0))};
}

bool mentions(const Tag& t, int piece) {
  const auto ps = pieces_of(t);
  return std::find(ps.begin(), ps.end(), piece) != ps.end();
}

bool share_piece(const Tag& a, const Tag& b) {
  for (int p : pieces_of(a)) {
    if (mentions(b, p)) return true;
  }
  return false;
}

/// "Laws of physics": can joins a and b both hold in one assembly?
/// They cannot if they use the same edge of the same piece for different
/// partners, or are the same connection stated twice.
bool physically_compatible(const JoinTag& a, const JoinTag& b) {
  const std::pair<int, Edge> slots_a[2] = {{a.pi, a.ei}, {a.pj, a.ej}};
  const std::pair<int, Edge> slots_b[2] = {{b.pi, b.ei}, {b.pj, b.ej}};
  for (const auto& sa : slots_a) {
    for (const auto& sb : slots_b) {
      if (sa == sb) return false;  // same edge of same piece used twice
    }
  }
  return true;
}

}  // namespace

Constraint semantic_order(const Action& a, const Action& b, LogRelation) {
  // Figures 7 and 8 give the same table for both log relations; the paper
  // distinguishes them because the engine consults `order` in different
  // directions (within a log only the reversing direction is asked).
  const Tag& ta = a.tag();
  const Tag& tb = b.tag();

  if (is_join(ta) && is_join(tb)) {
    // "maybe if physically possible; unsafe otherwise"
    return physically_compatible(decode_join(ta), decode_join(tb))
               ? Constraint::kMaybe
               : Constraint::kUnsafe;
  }
  if (is_join(ta) && is_remove(tb)) {
    // join(..Pi..Pj..) before remove(Pf): losing freshly joined work is
    // undesirable — "unsafe if f = i or f = j; maybe otherwise".
    const JoinTag j = decode_join(ta);
    const int f = static_cast<int>(tb.param(0));
    return (f == j.pi || f == j.pj) ? Constraint::kUnsafe : Constraint::kMaybe;
  }
  if (is_remove(ta) && is_join(tb)) {
    // remove(Pm) before join(..Pi..Pj..): "unsafe if m = i or m = j; maybe
    // otherwise". Together with the row above this makes a concurrent
    // remove/join of the same piece a static conflict (§4.4's "spurious
    // conflict" discussion).
    const int m = static_cast<int>(ta.param(0));
    const JoinTag j = decode_join(tb);
    return (m == j.pi || m == j.pj) ? Constraint::kUnsafe : Constraint::kMaybe;
  }
  if (is_remove(ta) && is_remove(tb)) {
    // "maybe if m != f; unsafe otherwise"
    return ta.param(0) == tb.param(0) ? Constraint::kUnsafe
                                      : Constraint::kMaybe;
  }
  // Insert is our explicit modelling of the paper's board initialisation;
  // give it remove-like semantics with respect to its piece: two actions
  // touching the same piece conflict statically, anything else is maybe.
  if (is_insert(ta) || is_insert(tb)) {
    const Tag& ins = is_insert(ta) ? ta : tb;
    const Tag& other = is_insert(ta) ? tb : ta;
    const int p = static_cast<int>(ins.param(0));
    return mentions(other, p) ? Constraint::kUnsafe : Constraint::kMaybe;
  }
  return Constraint::kMaybe;
}

Constraint keep_log_order(const Action&, const Action&, LogRelation rel) {
  // Same log ⇒ the engine is asking about the reversing direction, which
  // Case 2 forbids outright. Across logs ⇒ no static information.
  return rel == LogRelation::kSameLog ? Constraint::kUnsafe
                                      : Constraint::kMaybe;
}

Constraint keep_join_order(const Action& a, const Action& b, LogRelation rel) {
  if (rel == LogRelation::kSameLog) {
    // Placement actions (joins and the insert that seeds them) keep their
    // log order; removes float freely.
    const bool both_placements = (is_join(a.tag()) || is_insert(a.tag())) &&
                                 (is_join(b.tag()) || is_insert(b.tag()));
    if (both_placements) return Constraint::kUnsafe;
  }
  return Constraint::kMaybe;
}

Constraint adjacency_order(const Action& a, const Action& b, LogRelation rel) {
  // Preference a I b between joins having one piece in common: declared
  // safe so the Safe/Strict heuristics chain adjacent joins.
  if (is_join(a.tag()) && is_join(b.tag()) && share_piece(a.tag(), b.tag())) {
    return Constraint::kSafe;
  }
  return keep_join_order(a, b, rel);
}

Constraint jigsaw_order(Board::OrderCase order_case, const Action& a,
                        const Action& b, LogRelation rel) {
  switch (order_case) {
    case Board::OrderCase::kUnconstrained:
      return Constraint::kMaybe;
    case Board::OrderCase::kSemantic:
      return semantic_order(a, b, rel);
    case Board::OrderCase::kKeepLogOrder:
      return keep_log_order(a, b, rel);
    case Board::OrderCase::kKeepJoinOrder:
      return keep_join_order(a, b, rel);
    case Board::OrderCase::kAdjacency:
      return adjacency_order(a, b, rel);
  }
  return Constraint::kMaybe;
}

}  // namespace icecube::jigsaw
