#include "jigsaw/actions.hpp"

#include <cassert>

namespace icecube::jigsaw {

bool InsertAction::precondition(const Universe& u) const {
  const auto& board = u.as<Board>(board_);
  if (strict_ && !board.board_empty()) return false;
  return board.available(piece_) &&
         !board.piece_at(board.home(piece_)).has_value();
}

bool InsertAction::execute(Universe& u) const {
  auto& board = u.as<Board>(board_);
  board.place(piece_, board.home(piece_));
  return true;
}

bool JoinAction::precondition(const Universe& u) const {
  const auto& board = u.as<Board>(board_);
  // (i) the board is not empty
  if (board.board_empty()) return false;
  // (ii) either Pi or Pj is available (but not both)
  if (board.available(pi_) == board.available(pj_)) return false;
  // (iii) edge ei of Pi and edge ej of Pj are not already taken
  if (board.edge_taken(pi_, ei_) || board.edge_taken(pj_, ej_)) return false;
  return true;
}

bool JoinAction::execute(Universe& u) const {
  auto& board = u.as<Board>(board_);
  // Square pieces: the two joined edges must be geometrically opposite.
  if (ej_ != opposite(ei_)) return false;

  const bool pi_placed = board.on_board(pi_);
  const int anchor = pi_placed ? pi_ : pj_;
  const int moved = pi_placed ? pj_ : pi_;
  const Edge anchor_edge = pi_placed ? ei_ : ej_;

  const auto anchor_pos = board.position(anchor);
  assert(anchor_pos.has_value());
  const Cell dest = neighbour(*anchor_pos, anchor_edge);
  if (board.piece_at(dest).has_value()) return false;  // cell occupied

  board.place(moved, dest);
  return true;
}

bool RemoveAction::precondition(const Universe& u) const {
  return u.as<Board>(board_).on_board(piece_);
}

bool RemoveAction::execute(Universe& u) const {
  u.as<Board>(board_).take_off(piece_);
  return true;
}

JoinAction correct_join(const Board& board, ObjectId board_id, int anchor,
                        int new_piece) {
  const Cell a = board.home(anchor);
  const Cell b = board.home(new_piece);
  Edge edge;
  if (b.row == a.row && b.col == a.col + 1) {
    edge = Edge::kRight;
  } else if (b.row == a.row && b.col == a.col - 1) {
    edge = Edge::kLeft;
  } else if (b.col == a.col && b.row == a.row + 1) {
    edge = Edge::kBottom;
  } else {
    assert(b.col == a.col && b.row == a.row - 1 &&
           "correct_join requires adjacent home cells");
    edge = Edge::kTop;
  }
  return JoinAction(board_id, anchor, edge, new_piece, opposite(edge));
}

}  // namespace icecube::jigsaw
