// Shared experiment harness for the §4 jigsaw evaluation: problem
// construction, the paper's comparison criteria, and a policy whose cost
// function implements them.
//
// §4.3: "We compared the reconciliation results according to different
// criteria: (i) the number of actions in the schedule, (ii) the number of
// pieces in the reconciled state, and (iii) the number of correct pieces."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/reconciler.hpp"
#include "jigsaw/board.hpp"
#include "jigsaw/scenario.hpp"

namespace icecube::jigsaw {

/// A reconciliation problem over one shared board.
struct Problem {
  Universe initial;
  ObjectId board_id;
  std::vector<Log> logs;
};

/// Which scenario each player follows.
struct PlayerSpec {
  enum class Kind : std::uint8_t { kU1, kU2, kU3 } kind;
  int amount;              ///< pieces for U1/U2, actions for U3
  std::uint64_t seed = 1;  ///< U3 only
};

/// Builds a rows×cols game under `order_case` with one log per player.
[[nodiscard]] Problem make_problem(int rows, int cols,
                                   Board::OrderCase order_case,
                                   const std::vector<PlayerSpec>& players,
                                   ScenarioOptions scenario_opts = {});

/// The paper's evaluation criteria for one outcome.
struct Criteria {
  int actions = 0;   ///< (i) actions in the schedule
  int pieces = 0;    ///< (ii) pieces in the reconciled state
  int correct = 0;   ///< (iii) correct pieces
  friend bool operator==(const Criteria&, const Criteria&) = default;
};

[[nodiscard]] Criteria evaluate(const Problem& problem, const Outcome& outcome);

/// Policy ranking outcomes by (iii) correct pieces, then (ii) pieces, then
/// (i) actions — all maximised.
class JigsawPolicy : public Policy {
 public:
  explicit JigsawPolicy(ObjectId board_id) : board_id_(board_id) {}

  double cost(const Outcome& outcome) override {
    const auto& board = outcome.final_state.as<Board>(board_id_);
    return -(board.correct_pieces() * 1'000'000.0 +
             board.pieces_on_board() * 1'000.0 +
             static_cast<double>(outcome.schedule.size()));
  }

 private:
  ObjectId board_id_;
};

/// One experiment run: reconcile `problem` under `options` and summarise.
struct ExperimentResult {
  Criteria best;
  SearchStats stats;
  std::size_t outcome_count = 0;
  bool best_complete = false;
};

[[nodiscard]] ExperimentResult run_experiment(const Problem& problem,
                                              const ReconcilerOptions& options);

}  // namespace icecube::jigsaw
