#include "jigsaw/introspect.hpp"

#include <memory>
#include <string>

#include "jigsaw/actions.hpp"

namespace icecube::jigsaw {

namespace {

std::string case_name(Board::OrderCase c) {
  switch (c) {
    case Board::OrderCase::kUnconstrained:
      return "jigsaw_unconstrained";
    case Board::OrderCase::kSemantic:
      return "jigsaw_semantic";
    case Board::OrderCase::kKeepLogOrder:
      return "jigsaw_keep_log_order";
    case Board::OrderCase::kKeepJoinOrder:
      return "jigsaw_keep_join_order";
    case Board::OrderCase::kAdjacency:
      return "jigsaw_adjacency";
  }
  return "jigsaw";
}

}  // namespace

AuditSubject board_audit_subject(Board::OrderCase order_case, int rows,
                                 int cols) {
  AuditSubject s;
  s.name = case_name(order_case);
  s.make_universe = [rows, cols, order_case] {
    Universe u;
    (void)u.add(std::make_unique<Board>(rows, cols, order_case));
    return u;
  };
  // Joins are sampled over arbitrary piece/edge combinations, so the pool
  // contains both legal connections and physically impossible ones — the
  // distinction Figure 7's join/join row turns on.
  const int pieces = rows * cols;
  s.sample_action = [pieces](const Universe&, Rng& rng) -> ActionPtr {
    const int p = static_cast<int>(rng.below(static_cast<std::uint64_t>(pieces)));
    switch (rng.below(3)) {
      case 0:
        return std::make_shared<InsertAction>(ObjectId(0), p);
      case 1:
        return std::make_shared<RemoveAction>(ObjectId(0), p);
      default: {
        int q = static_cast<int>(rng.below(static_cast<std::uint64_t>(pieces)));
        if (q == p) q = (q + 1) % pieces;
        const auto ei = static_cast<Edge>(rng.below(4));
        const auto ej = rng.chance(0.75) ? opposite(ei)
                                         : static_cast<Edge>(rng.below(4));
        return std::make_shared<JoinAction>(ObjectId(0), p, ei, q, ej);
      }
    }
  };
  return s;
}

}  // namespace icecube::jigsaw
