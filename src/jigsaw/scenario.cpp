#include "jigsaw/scenario.hpp"

#include <cassert>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace icecube::jigsaw {

namespace {

/// Builder that executes each appended action against a private replica so
/// generated logs satisfy the "log is correct" invariant by construction.
class IsolatedSession {
 public:
  IsolatedSession(const Board& board, ObjectId board_id)
      : board_id_(board_id) {
    ObjectId id = universe_.add(board.clone());
    assert(id == board_id && "scenario board id must match its universe slot");
    (void)id;
  }

  /// Tries the action against the replica; records it only on success.
  bool try_append(ActionPtr action) {
    if (!action->precondition(universe_)) return false;
    if (!action->execute(universe_)) return false;
    log_.append(std::move(action));
    return true;
  }

  [[nodiscard]] const Board& board() const {
    return universe_.as<Board>(board_id_);
  }
  [[nodiscard]] Log take(std::string name) {
    Log out(std::move(name));
    for (const auto& a : log_) out.append(a);
    return out;
  }

 private:
  Universe universe_;
  ObjectId board_id_;
  Log log_;
};

/// Row-major sweep: anchor is the left neighbour when one exists, otherwise
/// the piece above.
int u1_anchor(const Board& board, int piece) {
  const Cell home = board.home(piece);
  return home.col > 0 ? piece - 1 : piece - board.cols();
}

/// Reverse sweep: anchor is the right neighbour when one exists, otherwise
/// the piece below.
int u2_anchor(const Board& board, int piece) {
  const Cell home = board.home(piece);
  return home.col < board.cols() - 1 ? piece + 1 : piece + board.cols();
}

}  // namespace

Log scenario_u1(const Board& board, ObjectId board_id, int pieces,
                ScenarioOptions opts) {
  assert(pieces >= 1 && pieces <= board.piece_count());
  IsolatedSession session(board, board_id);
  bool ok = session.try_append(
      std::make_shared<InsertAction>(board_id, 0, opts.strict_insert));
  assert(ok);
  for (int p = 1; p < pieces; ++p) {
    ok = session.try_append(std::make_shared<JoinAction>(
        correct_join(board, board_id, u1_anchor(board, p), p)));
    assert(ok);
  }
  (void)ok;
  return session.take("U1");
}

Log scenario_u2(const Board& board, ObjectId board_id, int pieces,
                ScenarioOptions opts) {
  assert(pieces >= 1 && pieces <= board.piece_count());
  IsolatedSession session(board, board_id);
  const int last = board.piece_count() - 1;
  bool ok = session.try_append(
      std::make_shared<InsertAction>(board_id, last, opts.strict_insert));
  assert(ok);
  for (int i = 1; i < pieces; ++i) {
    const int p = last - i;
    ok = session.try_append(std::make_shared<JoinAction>(
        correct_join(board, board_id, u2_anchor(board, p), p)));
    assert(ok);
  }
  (void)ok;
  return session.take("U2");
}

Log scenario_u3(const Board& board, ObjectId board_id, int actions,
                std::uint64_t seed, ScenarioOptions opts) {
  IsolatedSession session(board, board_id);
  Rng rng(seed);

  int recorded = 0;
  if (actions > 0) {
    if (session.try_append(
            std::make_shared<InsertAction>(board_id, 0, opts.strict_insert))) {
      ++recorded;
    }
  }

  int attempts_left = actions * 64;  // generous bound; biased moves converge
  while (recorded < actions && attempts_left-- > 0) {
    const Board& b = session.board();

    // Collect the correct frontier: (anchor on board, missing neighbour).
    std::vector<std::pair<int, int>> frontier;
    for (int p = 0; p < b.piece_count(); ++p) {
      if (!b.on_board(p)) continue;
      const Cell home = b.home(p);
      const int candidates[4] = {
          home.col > 0 ? p - 1 : -1, home.col < b.cols() - 1 ? p + 1 : -1,
          home.row > 0 ? p - b.cols() : -1,
          home.row < b.rows() - 1 ? p + b.cols() : -1};
      for (int q : candidates) {
        if (q >= 0 && b.available(q)) frontier.emplace_back(p, q);
      }
    }

    const double roll = rng.unit();
    bool appended = false;
    if (roll < 0.80 && !frontier.empty()) {
      // Correct join from a random frontier edge.
      const auto& [anchor, piece] =
          frontier[static_cast<std::size_t>(rng.below(frontier.size()))];
      appended = session.try_append(std::make_shared<JoinAction>(
          correct_join(b, board_id, anchor, piece)));
    } else if (roll < 0.90 && b.pieces_on_board() > 1) {
      // Remove a random placed piece (keep the board seeded).
      std::vector<int> placed;
      for (int p = 0; p < b.piece_count(); ++p) {
        if (b.on_board(p)) placed.push_back(p);
      }
      const int victim =
          placed[static_cast<std::size_t>(rng.below(placed.size()))];
      appended =
          session.try_append(std::make_shared<RemoveAction>(board_id, victim));
    } else {
      // Incorrect join: attach a random available piece to a random placed
      // anchor on a random free edge — physically possible, semantically
      // wrong (the piece will usually land off its home cell).
      std::vector<int> placed, avail;
      for (int p = 0; p < b.piece_count(); ++p) {
        (b.on_board(p) ? placed : avail).push_back(p);
      }
      if (!placed.empty() && !avail.empty()) {
        const int anchor =
            placed[static_cast<std::size_t>(rng.below(placed.size()))];
        const int piece =
            avail[static_cast<std::size_t>(rng.below(avail.size()))];
        const Edge e = static_cast<Edge>(rng.below(4));
        appended = session.try_append(std::make_shared<JoinAction>(
            board_id, anchor, e, piece, opposite(e)));
      }
    }
    if (appended) ++recorded;
  }
  return session.take("U3");
}

int replay_count(const Board& board, const Log& log) {
  Universe universe;
  const ObjectId id = universe.add(board.clone());
  (void)id;
  int ok = 0;
  for (const auto& action : log) {
    if (action->precondition(universe) && action->execute(universe)) ++ok;
  }
  return ok;
}

}  // namespace icecube::jigsaw
