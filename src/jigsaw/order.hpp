// Jigsaw order methods: Case 1 semantic constraints (Figures 7 and 8) and
// the application-policy constraints of Cases 2–4 (§4.2).
#pragma once

#include "core/action.hpp"
#include "core/constraint.hpp"
#include "core/universe.hpp"
#include "jigsaw/board.hpp"

namespace icecube::jigsaw {

/// Dispatches to the order method for `order_case`. `a` proposed before `b`;
/// for same-log pairs this is called only for the log-reversing direction.
[[nodiscard]] Constraint jigsaw_order(Board::OrderCase order_case,
                                      const Action& a, const Action& b,
                                      LogRelation rel);

/// Case 1: the rules of the game and the laws of physics (Figures 7–8).
[[nodiscard]] Constraint semantic_order(const Action& a, const Action& b,
                                        LogRelation rel);

/// Case 2: preserve each player's entire log order; across logs, no static
/// information ("for two actions a and b, order(b, a) = unsafe if a precedes
/// b in the same log").
[[nodiscard]] Constraint keep_log_order(const Action& a, const Action& b,
                                        LogRelation rel);

/// Case 3: preserve log order between joins only; removes (and inserts) may
/// be scheduled anywhere.
[[nodiscard]] Constraint keep_join_order(const Action& a, const Action& b,
                                         LogRelation rel);

/// Case 4: Case 3 plus the preference a I b between join actions sharing a
/// piece — favours uninterrupted strings of adjacent joins.
[[nodiscard]] Constraint adjacency_order(const Action& a, const Action& b,
                                         LogRelation rel);

}  // namespace icecube::jigsaw
