#include "jigsaw/board.hpp"

#include <cassert>
#include <sstream>

#include "jigsaw/order.hpp"

namespace icecube::jigsaw {

Board::Board(int rows, int cols, OrderCase order_case)
    : rows_(rows),
      cols_(cols),
      order_case_(order_case),
      position_(static_cast<std::size_t>(rows * cols)) {
  assert(rows > 0 && cols > 0);
}

std::optional<int> Board::piece_at(Cell c) const {
  const auto it = occupancy_.find(c);
  if (it == occupancy_.end()) return std::nullopt;
  return it->second;
}

bool Board::edge_taken(int piece, Edge e) const {
  const auto pos = position(piece);
  if (!pos) return false;  // an available piece has no taken edges
  return occupancy_.contains(neighbour(*pos, e));
}

void Board::place(int piece, Cell c) {
  assert(available(piece));
  assert(!occupancy_.contains(c));
  position_[static_cast<std::size_t>(piece)] = c;
  occupancy_.emplace(c, piece);
}

void Board::take_off(int piece) {
  const auto pos = position(piece);
  assert(pos.has_value());
  occupancy_.erase(*pos);
  position_[static_cast<std::size_t>(piece)].reset();
}

int Board::correct_pieces() const {
  int correct = 0;
  for (int p = 0; p < piece_count(); ++p) {
    if (position(p) == std::optional<Cell>(home(p))) ++correct;
  }
  return correct;
}

Constraint Board::order(const Action& a, const Action& b,
                        LogRelation rel) const {
  return jigsaw_order(order_case_, a, b, rel);
}

std::string Board::describe() const {
  std::ostringstream os;
  os << "jigsaw " << rows_ << 'x' << cols_ << ": " << pieces_on_board()
     << " placed, " << correct_pieces() << " correct";
  return os.str();
}

std::string Board::fingerprint() const {
  std::ostringstream os;
  for (int p = 0; p < piece_count(); ++p) {
    const auto pos = position(p);
    if (pos) os << p << "@(" << pos->row << ',' << pos->col << ") ";
  }
  return os.str();
}

std::string Board::render() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const auto piece = piece_at(Cell{r, c});
      if (!piece) {
        os << "  . ";
      } else if (home(*piece) == Cell{r, c}) {
        os << ' ' << (*piece < 10 ? " " : "") << *piece << ' ';
      } else {
        os << " !" << *piece << (*piece < 10 ? " " : "");
      }
    }
    os << '\n';
  }
  int strays = 0;
  for (int p = 0; p < piece_count(); ++p) {
    const auto pos = position(p);
    if (pos && (pos->row < 0 || pos->row >= rows_ || pos->col < 0 ||
                pos->col >= cols_)) {
      ++strays;
    }
  }
  if (strays > 0) os << "(" << strays << " pieces placed off-frame)\n";
  return os.str();
}

}  // namespace icecube::jigsaw
