// Chunked bump-pointer arena for ingested stream state.
//
// The streaming daemon allocates many small, identically-lived objects per
// epoch (ingest envelopes, per-arrival scratch, trace strings). A general
// allocator pays per-object malloc/free plus fragmentation; the arena pays
// one pointer bump, and `reset()` returns every chunk to the pool in O(#
// non-trivial objects) without releasing memory — the steady-state daemon
// allocates nothing after warm-up.
//
// `make<T>` registers a destructor only when T needs one, so a reset over
// trivially-destructible bulk data is a pointer swap. Not thread-safe by
// design: each daemon thread owns its arena (the SPSC ring is the only
// cross-thread edge).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace icecube {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { call_destructors(); }

  /// Raw aligned storage; alignment must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment) {
    std::uintptr_t p = (cursor_ + (alignment - 1)) & ~(alignment - 1);
    if (p + bytes > limit_) {
      grow(bytes + alignment);
      p = (cursor_ + (alignment - 1)) & ~(alignment - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in place. Non-trivially-destructible types are
  /// registered so `reset()`/destruction run their destructors.
  template <typename T, typename... Args>
  [[nodiscard]] T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    T* obj = new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          {obj, [](void* q) { static_cast<T*>(q)->~T(); }});
    }
    return obj;
  }

  /// Destroys registered objects and rewinds every chunk for reuse. No
  /// memory is returned to the system — the next fill is allocation-free.
  void reset() {
    call_destructors();
    finalizers_.clear();
    next_chunk_ = 0;
    bytes_allocated_ = 0;
    if (!chunks_.empty()) {
      open_chunk(0);
    } else {
      cursor_ = 0;
      limit_ = 0;
    }
  }

  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_allocated_;
  }
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
  };

  void open_chunk(std::size_t index) {
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[index].data.get());
    limit_ = cursor_ + chunks_[index].size;
    next_chunk_ = index + 1;
  }

  void grow(std::size_t min_bytes) {
    // Reuse a rewound chunk when one is large enough; otherwise append a
    // new chunk of at least `chunk_bytes_`.
    while (next_chunk_ < chunks_.size()) {
      if (chunks_[next_chunk_].size >= min_bytes) {
        open_chunk(next_chunk_);
        return;
      }
      ++next_chunk_;
    }
    const std::size_t size =
        min_bytes > chunk_bytes_ ? min_bytes : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    open_chunk(chunks_.size() - 1);
  }

  void call_destructors() {
    // Reverse construction order, the conventional arena contract.
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->destroy(it->object);
    }
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_ = 0;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
  std::vector<Finalizer> finalizers_;
};

}  // namespace icecube
