// Fixed-capacity lock-free single-producer/single-consumer ring.
//
// The streaming daemon's ingest edge: one application thread pushes
// actions, the reconciler thread drains them. The classic Lamport queue
// with two refinements that matter at millions of ops/sec:
//
//   * head and tail live on their own cache lines (no false sharing), and
//     each side keeps a *cached* copy of the opposite index so the common
//     case (ring neither full nor empty) touches no shared line at all —
//     the shared index is re-read only when the cached value says stop;
//   * `pop_batch` drains a run of slots under a single acquire load, which
//     is what lets the consumer keep up with a producer in a tight loop.
//
// Memory ordering is the textbook pairing: the producer's release store of
// `tail_` publishes the slot write; the consumer's acquire load of `tail_`
// observes it (and symmetrically for `head_` on the return path). T must be
// default-constructible and movable; slots are reused in place, so a
// moved-from T is all the cleanup a pop leaves behind.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace icecube {

/// Destructive-interference distance. Pinned to 64 rather than read from
/// std::hardware_destructive_interference_size: the library value is an
/// ABI variable (GCC warns on any use), and every platform this builds on
/// pads to 64-byte lines.
inline constexpr std::size_t kCacheLineSize = 64;

/// `CapacityPow2` must be a power of two; the ring holds CapacityPow2 - 1
/// elements (one slot separates full from empty).
template <typename T, std::size_t CapacityPow2>
class SpscRing {
  static_assert(CapacityPow2 >= 2 && (CapacityPow2 & (CapacityPow2 - 1)) == 0,
                "capacity must be a power of two");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] static constexpr std::size_t capacity() {
    return CapacityPow2 - 1;
  }

  /// Producer side. False when the ring is full (backpressure: the caller
  /// retries or sheds).
  [[nodiscard]] bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & kMask;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & kMask, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves up to `max` elements into `out_first, ...` and
  /// returns how many were drained. One acquire load covers the whole run.
  template <typename OutputIt>
  std::size_t pop_batch(OutputIt out_first, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail =
        (tail_.load(std::memory_order_acquire) - head) & kMask;
    if (avail > max) avail = max;
    for (std::size_t i = 0; i < avail; ++i) {
      *out_first++ = std::move(slots_[(head + i) & kMask]);
    }
    if (avail > 0) {
      head_.store((head + avail) & kMask, std::memory_order_release);
    }
    return avail;
  }

  /// Approximate occupancy (exact from the consumer thread).
  [[nodiscard]] std::size_t size() const {
    return (tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire)) &
           kMask;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  static constexpr std::size_t kMask = CapacityPow2 - 1;

  std::array<T, CapacityPow2> slots_{};

  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer
  alignas(kCacheLineSize) std::size_t tail_cache_ = 0;  // consumer-private
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer
  alignas(kCacheLineSize) std::size_t head_cache_ = 0;  // producer-private
};

}  // namespace icecube
