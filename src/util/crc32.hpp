// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven and
// constexpr-friendly.
//
// Shipped payloads (logs, universes) carry a CRC trailer so the receiving
// site can distinguish transport corruption from a merely unparseable file
// before it trusts a decode result. The table is computed at compile time;
// checksums of string literals are usable in static_asserts.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace icecube {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Incremental CRC-32 accumulator.
///
/// ```
/// Crc32 crc;
/// crc.update(chunk1);
/// crc.update(chunk2);
/// std::uint32_t digest = crc.value();
/// ```
class Crc32 {
 public:
  constexpr void update(std::string_view data) {
    for (char c : data) {
      const auto byte = static_cast<unsigned char>(c);
      state_ = (state_ >> 8) ^ detail::kCrc32Table[(state_ ^ byte) & 0xFFu];
    }
  }

  /// The digest of everything fed so far. `update` may continue afterwards.
  [[nodiscard]] constexpr std::uint32_t value() const { return ~state_; }

  /// One-shot convenience: `Crc32::of("123456789") == 0xCBF43926`.
  [[nodiscard]] static constexpr std::uint32_t of(std::string_view data) {
    Crc32 crc;
    crc.update(data);
    return crc.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

static_assert(Crc32::of("123456789") == 0xCBF43926u,
              "CRC-32 check value (IEEE)");
static_assert(Crc32::of("") == 0u);

}  // namespace icecube
