// Strongly-typed integer identifiers.
//
// IceCube juggles several index spaces (actions, objects, logs); mixing them
// up silently is a classic source of bugs. `StrongId<Tag>` is a zero-cost
// wrapper that makes each space a distinct type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <limits>
#include <ostream>

namespace icecube {

/// A type-safe integral id. `Tag` is an empty struct that names the id space.
/// The invalid (default) value is the max of the underlying type.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() = default;
  template <typename Int>
    requires std::is_integral_v<Int>
  constexpr explicit StrongId(Int v)
      : value_(static_cast<underlying_type>(v)) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  underlying_type value_ = kInvalid;
};

struct ActionIdTag {};
struct ObjectIdTag {};
struct LogIdTag {};

/// Index of an action within a reconciliation problem (dense, 0-based).
using ActionId = StrongId<ActionIdTag>;
/// Index of a shared object within a `Universe` (dense, 0-based).
using ObjectId = StrongId<ObjectIdTag>;
/// Index of an input log (one per replica/site).
using LogId = StrongId<LogIdTag>;

}  // namespace icecube

template <typename Tag>
struct std::hash<icecube::StrongId<Tag>> {
  std::size_t operator()(icecube::StrongId<Tag> id) const noexcept {
    return std::hash<typename icecube::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
