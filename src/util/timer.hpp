// Wall-clock stopwatch for search limits and experiment reporting.
#pragma once

#include <chrono>

namespace icecube {

/// Monotonic stopwatch. Started on construction; `seconds()` is elapsed time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace icecube
