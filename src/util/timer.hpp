// Wall-clock stopwatch for search limits and experiment reporting.
#pragma once

#include <chrono>

namespace icecube {

/// Monotonic stopwatch. Started on construction; `seconds()` is elapsed time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A fixed point in time against which search limits are checked.
///
/// Captured once when a search starts and immutable afterwards, so any
/// number of worker threads can poll `expired()` without synchronisation —
/// unlike re-deriving elapsed time from a shared, restartable Stopwatch,
/// whose start point is a plain (non-atomic) field.
class Deadline {
 public:
  /// Default: no deadline; `expired()` is always false.
  Deadline() = default;

  /// Deadline `seconds` from now; `seconds <= 0` disables it (mirroring
  /// SearchLimits::max_seconds).
  [[nodiscard]] static Deadline after_seconds(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.enabled_ = true;
      d.at_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    }
    return d;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool expired() const {
    return enabled_ && std::chrono::steady_clock::now() > at_;
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace icecube
