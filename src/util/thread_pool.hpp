// A small reusable worker pool for the parallel reconciliation engine.
//
// The engine's parallel units — per-cutset schedule searches and constraint-
// matrix shards — are coarse, independent and deterministic, so the pool is
// deliberately minimal: a fixed set of workers draining one FIFO task queue.
// All ordering decisions that affect results live in the callers (the
// parallel driver merges per-cutset results in cutset order; the constraint
// builder writes disjoint matrix cells), never in the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace icecube {

/// Fixed-size worker pool. Tasks must not throw; they are run exactly once,
/// in FIFO submission order (per-worker interleaving is unspecified).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Sensible worker count for `requested` (0 = use the hardware).
  [[nodiscard]] static std::size_t resolve(std::size_t requested) {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_, queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n), work-stealing over an atomic index.
/// The calling thread participates, so a pool of P workers gives P+1 lanes.
/// Blocks until every index has been processed. With a null/empty pool the
/// loop degenerates to a plain sequential for — callers need no special
/// casing for the `threads=1` configuration.
template <typename Fn>
void parallel_for_each(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || pool->size() == 0 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t helpers_done = 0;
  } shared;

  auto drain = [&shared, &fn, n] {
    for (std::size_t i; (i = shared.next.fetch_add(
                             1, std::memory_order_relaxed)) < n;) {
      fn(i);
    }
  };

  const std::size_t helpers = std::min(pool->size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([&shared, &drain] {
      drain();
      // Notify while holding the lock: `shared` lives on the caller's
      // stack, and the caller may destroy it the moment the predicate
      // holds. Signalling under the mutex means this helper has fully
      // released everything before the waiter can wake and return.
      std::lock_guard<std::mutex> lock(shared.mutex);
      ++shared.helpers_done;
      shared.done_cv.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(shared.mutex);
  shared.done_cv.wait(lock,
                      [&shared, helpers] { return shared.helpers_done == helpers; });
}

}  // namespace icecube
