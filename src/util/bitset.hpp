// Dynamic bit set sized at runtime.
//
// The scheduler manipulates sets of actions (scheduled, skipped, candidate,
// dependency rows) on every search step; a packed bit set keeps those
// operations O(N/64) and allocation-free after construction.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace icecube {

/// Fixed-capacity bit set whose size is chosen at construction.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  void set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void reset(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }
  [[nodiscard]] bool none() const { return !any(); }

  Bitset& operator|=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  Bitset& operator&=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }
  /// Set difference: remove every bit that is set in `o`.
  Bitset& operator-=(const Bitset& o) {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  friend bool operator==(const Bitset& a, const Bitset& b) = default;

  /// True iff this set and `o` share no elements.
  [[nodiscard]] bool disjoint(const Bitset& o) const {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return false;
    return true;
  }

  /// True iff every element of this set is also in `o`.
  [[nodiscard]] bool subset_of(const Bitset& o) const {
    assert(size_ == o.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  /// Invoke `fn(index)` for every set bit, in increasing index order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_vector() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for_each([&out](std::size_t i) { out.push_back(i); });
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace icecube
