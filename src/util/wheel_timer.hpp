// Hierarchical-free single-level timing wheel with an overflow list.
//
// The streaming daemon arms one deadline per ingest batch ("commit within
// the latency budget or degrade to greedy") plus periodic housekeeping.
// Those deadlines are dense and near-future, which is the case a timing
// wheel serves in O(1) per schedule/cancel/expire — against a binary heap's
// O(log n) and allocation churn.
//
// Ticks are caller-defined (the daemon uses microseconds). Timers further
// out than one wheel revolution sit in an overflow vector that is re-filed
// lazily as the wheel turns past their slot; with the daemon's budgets
// (micro- to milliseconds) the overflow path is cold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace icecube {

class WheelTimer {
 public:
  using TimerId = std::uint64_t;

  /// `slots` must be a power of two; the wheel spans `slots` ticks per
  /// revolution.
  explicit WheelTimer(std::uint64_t now_tick = 0, std::size_t slots = 256)
      : slots_(slots), mask_(slots - 1), now_(now_tick), wheel_(slots) {}

  /// Arms a timer at absolute tick `deadline`; past-or-present deadlines
  /// fire on the next advance. Returns an id usable with `cancel`.
  TimerId schedule(std::uint64_t deadline) {
    const TimerId id = next_id_++;
    if (deadline <= now_) deadline = now_ + 1;
    file(Entry{id, deadline});
    ++armed_;
    return id;
  }

  /// Lazily disarms `id`; the entry is dropped when its slot is swept.
  void cancel(TimerId id) {
    if (id < next_id_) cancelled_.push_back(id);
  }

  /// Advances the wheel to `now_tick` and invokes `fn(id, deadline)` for
  /// every expired, still-armed timer (insertion order within a tick).
  template <typename Fn>
  std::size_t advance(std::uint64_t now_tick, Fn&& fn) {
    std::size_t fired = 0;
    while (now_ < now_tick) {
      if (armed_ == 0) {
        // Nothing can fire: jump over the idle span instead of ticking
        // through it (epoch gaps are unbounded; budgets are not).
        now_ = now_tick;
        cancelled_.clear();
        break;
      }
      ++now_;
      fired += sweep(wheel_[now_ & mask_], std::forward<Fn>(fn));
      if ((now_ & mask_) == 0 && !overflow_.empty()) refile_overflow();
    }
    return fired;
  }

  [[nodiscard]] std::uint64_t now() const { return now_; }
  [[nodiscard]] std::size_t armed() const { return armed_; }

 private:
  struct Entry {
    TimerId id;
    std::uint64_t deadline;
  };

  void file(Entry e) {
    if (e.deadline >= now_ + slots_) {
      overflow_.push_back(e);
    } else {
      wheel_[e.deadline & mask_].push_back(e);
    }
  }

  [[nodiscard]] bool is_cancelled(TimerId id) {
    for (std::size_t i = 0; i < cancelled_.size(); ++i) {
      if (cancelled_[i] == id) {
        cancelled_[i] = cancelled_.back();
        cancelled_.pop_back();
        return true;
      }
    }
    return false;
  }

  template <typename Fn>
  std::size_t sweep(std::vector<Entry>& slot, Fn&& fn) {
    std::size_t fired = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      Entry e = slot[i];
      if (e.deadline > now_) {
        // A later revolution's timer sharing this slot; keep it filed.
        slot[keep++] = e;
        continue;
      }
      --armed_;
      if (!is_cancelled(e.id)) {
        fn(e.id, e.deadline);
        ++fired;
      }
    }
    slot.resize(keep);
    return fired;
  }

  void refile_overflow() {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
      Entry e = overflow_[i];
      if (e.deadline < now_ + slots_) {
        wheel_[e.deadline & mask_].push_back(e);
      } else {
        overflow_[keep++] = e;
      }
    }
    overflow_.resize(keep);
  }

  std::size_t slots_;
  std::uint64_t mask_;
  std::uint64_t now_;
  std::vector<std::vector<Entry>> wheel_;
  std::vector<Entry> overflow_;
  std::vector<TimerId> cancelled_;
  TimerId next_id_ = 1;
  std::size_t armed_ = 0;
};

}  // namespace icecube
