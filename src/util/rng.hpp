// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run and platform-to-platform, so we
// carry our own small PRNG (xoshiro256**, seeded via SplitMix64) instead of
// relying on implementation-defined std::default_random_engine behaviour.
#pragma once

#include <cstdint>

namespace icecube {

/// SplitMix64 step; used to expand a single seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x1cecbe0ULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Debiased via rejection from the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  constexpr bool chance(double p) { return unit() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace icecube
