#include "core/reconciler.hpp"

#include <algorithm>
#include <sstream>

#include "core/degrade.hpp"
#include "core/parallel_driver.hpp"
#include "core/selection.hpp"
#include "core/simulator.hpp"
#include "util/timer.hpp"

namespace icecube {

Reconciler::Reconciler(Universe initial, std::vector<Log> logs,
                       ReconcilerOptions options, Policy* policy)
    : initial_(std::move(initial)),
      logs_(std::move(logs)),
      options_(options),
      policy_(policy) {
  if (policy_ == nullptr) {
    default_policy_ = std::make_unique<Policy>();
    policy_ = default_policy_.get();
  }
  initial_.set_copy_mode(options_.eager_state_copies
                             ? Universe::CopyMode::kEager
                             : Universe::CopyMode::kCopyOnWrite);
  const std::size_t lanes =
      options_.threads == 1 ? 1 : ThreadPool::resolve(options_.threads);
  // The calling thread is always one lane, so a pool of lanes-1 workers.
  if (lanes > 1) pool_ = std::make_unique<ThreadPool>(lanes - 1);
  records_ = flatten(logs_);
  matrix_ =
      build_constraints(initial_, records_, {pool_.get(), &build_stats_});
  relations_ = Relations::from_constraints(matrix_);
  if (options_.memoize_failures) {
    target_overlap_ = build_target_overlap(records_);
  }
}

ReconcileResult Reconciler::run() {
  ReconcileResult result;
  Stopwatch clock;
  const Deadline deadline =
      Deadline::after_seconds(options_.limits.max_seconds);

  CutsetAnalysis cuts = find_proper_cutsets(relations_, options_.max_cycles,
                                            options_.max_cutsets);
  result.stats.cutsets_truncated = cuts.truncated;
  policy_->select_cutsets(cuts.cutsets);
  result.stats.cutset_count = cuts.cutsets.size();
  result.cutsets = cuts.cutsets;
  result.stats.constraint_pairs_evaluated = build_stats_.pairs_evaluated;
  result.stats.constraint_order_calls = build_stats_.order_calls;

  Selection selection(*policy_, options_.keep_outcomes);
  if (pool_ != nullptr && cuts.cutsets.size() > 1) {
    // Independent cutsets are independent search problems: fan them out
    // across the pool and merge deterministically (see parallel_driver.hpp).
    run_cutsets_parallel(records_, relations_, initial_, options_, *policy_,
                         cuts.cutsets, deadline, clock, *pool_, selection,
                         result.stats,
                         options_.memoize_failures ? &target_overlap_
                                                   : nullptr);
  } else {
    for (const Cutset& cutset : cuts.cutsets) {
      // Under a non-empty cutset the dependence closure must be recomputed
      // with the cut vertices' edges removed (see Relations::restricted).
      Relations working;
      const Relations* active = &relations_;
      if (!cutset.empty()) {
        Bitset removed(records_.size());
        for (ActionId a : cutset.actions) removed.set(a.index());
        working = relations_.restricted(removed);
        active = &working;
      }
      Simulator simulator(records_, *active, options_, *policy_, selection,
                          result.stats, clock, deadline,
                          options_.memoize_failures ? &target_overlap_
                                                    : nullptr);
      if (!simulator.run(cutset, initial_)) break;
    }
  }

  // Graceful degradation (anytime behaviour): a budget-exhausted search
  // with no complete schedule still owes the caller a valid result. The
  // greedy fallback always terminates and is offered through the same
  // selection, so a better partial search result still wins on cost.
  const bool any_complete =
      std::any_of(selection.outcomes().begin(), selection.outcomes().end(),
                  [](const Outcome& o) { return o.complete; });
  if (options_.degrade_on_exhaustion && result.stats.hit_limit &&
      !any_complete && !records_.empty()) {
    Outcome fallback = greedy_degraded_outcome(initial_, records_);
    result.degraded = true;
    result.degraded_dropped = fallback.skipped;
    (void)selection.offer(std::move(fallback));
  }

  result.stats.elapsed_seconds = clock.seconds();
  result.outcomes = selection.take();
  return result;
}

std::string Reconciler::describe_schedule(
    const std::vector<ActionId>& schedule) const {
  std::ostringstream os;
  for (ActionId id : schedule) {
    const ActionRecord& rec = records_[id.index()];
    const std::string& name = logs_[rec.log.index()].name();
    os << (name.empty() ? "log" + std::to_string(rec.log.value()) : name)
       << ':' << rec.position << ' ' << rec.action->describe() << '\n';
  }
  return os.str();
}

}  // namespace icecube
