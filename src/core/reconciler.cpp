#include "core/reconciler.hpp"

#include <algorithm>
#include <sstream>

#include "core/degrade.hpp"
#include "core/selection.hpp"
#include "solver/backend.hpp"
#include "util/timer.hpp"

namespace icecube {

Reconciler::Reconciler(Universe initial, std::vector<Log> logs,
                       ReconcilerOptions options, Policy* policy)
    : initial_(std::move(initial)),
      logs_(std::move(logs)),
      options_(options),
      policy_(policy) {
  if (policy_ == nullptr) {
    default_policy_ = std::make_unique<Policy>();
    policy_ = default_policy_.get();
  }
  initial_.set_copy_mode(options_.eager_state_copies
                             ? Universe::CopyMode::kEager
                             : Universe::CopyMode::kCopyOnWrite);
  const std::size_t lanes =
      options_.threads == 1 ? 1 : ThreadPool::resolve(options_.threads);
  // The calling thread is always one lane, so a pool of lanes-1 workers.
  if (lanes > 1) pool_ = std::make_unique<ThreadPool>(lanes - 1);
  records_ = flatten(logs_);

  // Backend resolution (DESIGN.md §13): DFS (and auto, while the problem is
  // small enough) runs on the dense matrix/closure path; the greedy and
  // local-search backends always run on the sparse adjacency path — the
  // dense structures are Θ(n²) and would wall off exactly the log sizes
  // those backends exist for. Auto on an oversized problem degenerates to
  // pure local search.
  resolved_backend_ = options_.backend;
  if (resolved_backend_ == SolverKind::kAuto &&
      records_.size() > options_.dense_graph_limit) {
    resolved_backend_ = SolverKind::kLocalSearch;
  }
  sparse_ = resolved_backend_ == SolverKind::kGreedy ||
            resolved_backend_ == SolverKind::kLocalSearch;
  if (sparse_) {
    graph_ = build_solver_graph(initial_, records_, &build_stats_);
  } else {
    matrix_ =
        build_constraints(initial_, records_, {pool_.get(), &build_stats_});
    relations_ = Relations::from_constraints(matrix_);
    if (options_.memoize_failures) {
      target_overlap_ = build_target_overlap(records_);
    }
  }
}

ReconcileResult Reconciler::run() {
  ReconcileResult result;
  Stopwatch clock;
  const Deadline deadline =
      Deadline::after_seconds(options_.limits.max_seconds);
  result.stats.backend = std::string(to_string(resolved_backend_));

  std::vector<Cutset> cutsets;
  SolveContext ctx;
  ctx.records = &records_;
  ctx.initial = &initial_;
  ctx.options = &options_;
  ctx.policy = policy_;
  ctx.deadline = &deadline;
  ctx.clock = &clock;
  ctx.pool = pool_.get();
  if (sparse_) {
    // One implicit sub-problem; dependence cycles are handled inside the
    // engine (cycle members are frozen out), so no cutset analysis runs.
    cutsets.push_back(Cutset{});
    ctx.graph = &graph_;
  } else {
    CutsetAnalysis cuts = find_proper_cutsets(relations_, options_.max_cycles,
                                              options_.max_cutsets);
    result.stats.cutsets_truncated = cuts.truncated;
    policy_->select_cutsets(cuts.cutsets);
    cutsets = std::move(cuts.cutsets);
    ctx.relations = &relations_;
    ctx.target_overlap =
        options_.memoize_failures ? &target_overlap_ : nullptr;
  }
  ctx.cutsets = &cutsets;
  result.stats.cutset_count = cutsets.size();
  result.cutsets = cutsets;
  result.stats.constraint_pairs_evaluated = build_stats_.pairs_evaluated;
  result.stats.constraint_order_calls = build_stats_.order_calls;

  Selection selection(*policy_, options_.keep_outcomes);
  make_solver_backend(resolved_backend_)->solve(ctx, selection, result.stats);

  // Graceful degradation (anytime behaviour): a budget-exhausted search
  // with no complete schedule still owes the caller a valid result. The
  // greedy fallback always terminates and is offered through the same
  // selection, so a better partial search result still wins on cost.
  const bool any_complete =
      std::any_of(selection.outcomes().begin(), selection.outcomes().end(),
                  [](const Outcome& o) { return o.complete; });
  if (options_.degrade_on_exhaustion && result.stats.hit_limit &&
      !any_complete && !records_.empty()) {
    Outcome fallback = greedy_degraded_outcome(initial_, records_);
    result.degraded = true;
    result.degraded_dropped = fallback.skipped;
    (void)selection.offer(std::move(fallback));
  }

  result.stats.elapsed_seconds = clock.seconds();
  result.outcomes = selection.take();
  return result;
}

std::string Reconciler::describe_schedule(
    const std::vector<ActionId>& schedule) const {
  std::ostringstream os;
  for (ActionId id : schedule) {
    const ActionRecord& rec = records_[id.index()];
    const std::string& name = logs_[rec.log.index()].name();
    os << (name.empty() ? "log" + std::to_string(rec.log.value()) : name)
       << ':' << rec.position << ' ' << rec.action->describe() << '\n';
  }
  return os.str();
}

}  // namespace icecube
