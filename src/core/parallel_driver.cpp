#include "core/parallel_driver.hpp"

#include <atomic>
#include <cstdint>
#include <utility>

#include "core/simulator.hpp"
#include "util/bitset.hpp"

namespace icecube {

namespace {

/// Everything one cutset's private search produced.
struct CutsetRun {
  SearchStats stats;
  std::vector<Outcome> kept;             // local Selection, best first
  std::vector<ImprovementEvent> events;  // local best-so-far trace
  bool stopped = false;  ///< simulator stop (limit / policy / first-complete)
  bool aborted = false;  ///< cancelled early; results are invalid
};

/// Lock-free fetch-min over the "earliest stopped cutset" index.
void fetch_min(std::atomic<std::size_t>& target, std::size_t value) {
  std::size_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_acq_rel)) {
  }
}

/// Runs one cutset's search to completion against private selection/stats.
/// `stop_index` (when non-null) is the cancellation channel: once some
/// earlier cutset has stopped the whole search, this cutset's results can
/// never be merged, so the worker gives up between step chunks. The search
/// itself is deterministic — cancellation only ever discards work whose
/// results would be discarded at merge anyway.
CutsetRun search_cutset(const std::vector<ActionRecord>& records,
                        const Relations& relations, const Universe& initial,
                        const ReconcilerOptions& options, Policy& policy,
                        const Cutset& cutset, const Deadline& deadline,
                        const Stopwatch& clock,
                        std::atomic<std::size_t>* stop_index, std::size_t k,
                        const std::vector<Bitset>* target_overlap) {
  CutsetRun run;
  Relations working;
  const Relations* active = &relations;
  if (!cutset.empty()) {
    Bitset removed(records.size());
    for (ActionId a : cutset.actions) removed.set(a.index());
    working = relations.restricted(removed);
    active = &working;
  }
  Selection local(policy, options.keep_outcomes);
  Simulator simulator(records, *active, options, policy, local, run.stats,
                      clock, deadline, target_overlap);
  simulator.set_improvement_log(&run.events);
  simulator.start(cutset, initial);
  constexpr std::uint64_t kPollChunk = 512;  // cancellation poll granularity
  while (simulator.step(stop_index != nullptr ? kPollChunk : UINT64_MAX)) {
    if (stop_index != nullptr &&
        stop_index->load(std::memory_order_acquire) < k) {
      run.aborted = true;
      return run;
    }
  }
  run.stopped = simulator.stopped();
  run.kept = local.take();
  return run;
}

/// Selection::better on the fields an ImprovementEvent carries.
bool better_event(const ImprovementEvent& a, const ImprovementEvent& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.complete != b.complete) return a.complete;
  if (a.skipped != b.skipped) return a.skipped < b.skipped;
  return false;
}

}  // namespace

void run_cutsets_parallel(const std::vector<ActionRecord>& records,
                          const Relations& relations, const Universe& initial,
                          const ReconcilerOptions& options, Policy& policy,
                          const std::vector<Cutset>& cutsets,
                          const Deadline& deadline, const Stopwatch& clock,
                          ThreadPool& pool, Selection& selection,
                          SearchStats& stats,
                          const std::vector<Bitset>* target_overlap) {
  const std::size_t count = cutsets.size();
  std::vector<CutsetRun> runs(count);
  std::atomic<std::size_t> stop_index{count};
  parallel_for_each(&pool, count, [&](std::size_t k) {
    runs[k] = search_cutset(records, relations, initial, options, policy,
                            cutsets[k], deadline, clock, &stop_index, k,
                            target_overlap);
    if (runs[k].stopped) fetch_min(stop_index, k);
  });

  // Deterministic merge, in cutset order. Each worker searched under the
  // *global* limits (the most any cutset could be allowed); here the actual
  // per-cutset budget is carved the way the sequential loop's shared
  // counters would have carved it, and any cutset that overshot its carve is
  // re-run under the exact carved limits. The invariants mirrored from the
  // sequential engine:
  //  - record_outcome stops the run once total explored >= max_schedules
  //    (the terminal that reaches the cap is still recorded);
  //  - the step loop stops once total sim_steps exceeds max_steps;
  //  - a stopped simulator (limit, policy, first-complete) ends the loop and
  //    later cutsets never run.
  const std::uint64_t max_schedules = options.limits.max_schedules;
  const std::uint64_t max_steps = options.limits.max_steps;
  std::uint64_t explored = 0;
  std::uint64_t steps = 0;
  ImprovementEvent best{};
  bool have_best = false;

  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t budget_schedules = max_schedules - explored;  // >= 1
    const std::uint64_t budget_steps = max_steps - steps;
    CutsetRun rerun;
    CutsetRun* run = &runs[k];
    if (run->aborted || run->stats.schedules_explored() > budget_schedules ||
        run->stats.sim_steps > budget_steps) {
      ReconcilerOptions carved = options;
      carved.limits.max_schedules = budget_schedules;
      carved.limits.max_steps = budget_steps;
      rerun = search_cutset(records, relations, initial, carved, policy,
                            cutsets[k], deadline, clock, nullptr, k,
                            target_overlap);
      run = &rerun;
    }

    // Stable keep-K merge: each local Selection saw exactly the offer stream
    // the shared sequential Selection would have seen from this cutset, and
    // re-offering the survivors best-first (equal outcomes insert after
    // existing ones) reproduces the global top-K with sequential tie order.
    for (Outcome& outcome : run->kept) {
      (void)selection.offer(std::move(outcome));
    }
    // Replay the best-so-far bookkeeping: local improvements are a superset
    // of the global ones, filtered here against the running global best.
    for (const ImprovementEvent& event : run->events) {
      if (!have_best || better_event(event, best)) {
        have_best = true;
        best = event;
        stats.schedules_to_best = explored + event.schedules_explored;
        stats.time_to_best = event.seconds;
      }
    }

    stats.accumulate(run->stats);
    explored += run->stats.schedules_explored();
    steps += run->stats.sim_steps;
    if (explored >= max_schedules) {
      stats.hit_limit = true;
      break;
    }
    if (run->stopped) break;
  }
}

}  // namespace icecube
