// Simulation outcomes and search statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// The result of simulating one schedule (complete or dead-ended).
struct Outcome {
  /// Actions successfully executed, in execution order.
  std::vector<ActionId> schedule;
  /// Actions dropped by FailureMode::kSkipAction in this branch.
  std::vector<ActionId> skipped;
  /// Actions excluded up front by the cutset this search ran under.
  std::vector<ActionId> cutset;
  /// Final state after replaying `schedule` from the initial state.
  Universe final_state;
  /// True iff every input action is accounted for (scheduled, skipped or
  /// cut) — the paper's "complete schedule" is `complete && skipped.empty()
  /// && cutset.empty()`, but applications usually just want `complete`.
  bool complete = false;
  /// Cost assigned by the selection stage; lower is better.
  double cost = 0.0;
  /// True iff this outcome was produced by the budget-exhaustion fallback
  /// (greedy insertion) rather than the search — valid, but with no
  /// optimality claim. See core/degrade.hpp.
  bool degraded = false;
};

/// Why a dynamic constraint failed.
enum class FailureKind : std::uint8_t { kPrecondition, kExecution };

/// Counters describing one reconciliation run.
struct SearchStats {
  std::uint64_t schedules_completed = 0;  ///< terminal nodes, complete
  std::uint64_t dead_ends = 0;            ///< terminal nodes, incomplete
  std::uint64_t sim_steps = 0;            ///< action simulations attempted
  std::uint64_t precondition_failures = 0;
  std::uint64_t execution_failures = 0;
  /// Failures answered from the §6 causal-key cache without re-simulation
  /// (only with ReconcilerOptions::memoize_failures).
  std::uint64_t memoized_failures = 0;
  std::uint64_t prefix_prunes = 0;  ///< prefixes abandoned by policy
  std::uint64_t state_clones = 0;   ///< shadow universe copies taken

  /// Object-level clone accounting from the copy-on-write universe (see
  /// Universe::CloneCounters): deep SharedObject clones actually performed,
  /// slot copies served by pointer sharing, and the approximate bytes the
  /// performed clones copied. Under `eager_state_copies` every slot of every
  /// shadow copy lands in `object_clones` — the ratio against the COW run
  /// is the headline `bench_state` reports.
  std::uint64_t object_clones = 0;
  std::uint64_t clones_avoided = 0;
  std::uint64_t bytes_cloned = 0;
  bool hit_limit = false;           ///< a SearchLimits bound was reached
  bool cutsets_truncated = false;   ///< cycle/cutset caps were reached
  std::size_t cutset_count = 0;     ///< number of proper cutsets searched

  /// Which solver backend produced this run ("dfs", "greedy", "ls",
  /// "auto"); benches tag every JSON row with it.
  std::string backend = "dfs";
  /// Local-search move accounting (zero for DFS/greedy): proposals
  /// generated and proposals accepted into the walk.
  std::uint64_t moves_proposed = 0;
  std::uint64_t moves_accepted = 0;

  /// Static-constraint construction work, copied from the builder's
  /// ConstraintBuildStats: ordered pair evaluations and SharedObject::order
  /// calls. The sparse builder's savings over the dense all-pairs scan show
  /// up here. The streaming daemon reuses `constraint_pairs_evaluated` for
  /// its incremental graph extension (new-vs-existing pairs only).
  std::uint64_t constraint_pairs_evaluated = 0;
  std::uint64_t constraint_order_calls = 0;

  /// Conflict-component decomposition and streaming-daemon accounting
  /// (src/solver/components.hpp, src/stream/). Batch sparse runs fill
  /// `components_resolved`; the commit fields stay zero outside the daemon.
  std::uint64_t components_resolved = 0;  ///< sub-problems solved
  std::uint64_t stream_epochs = 0;        ///< daemon solve/commit rounds
  std::uint64_t commit_violations = 0;    ///< re-solves contradicting commits
  std::uint64_t max_commit_lag = 0;       ///< peak ingested-minus-committed

  double elapsed_seconds = 0.0;
  /// Seconds from search start until the incumbent best outcome was found
  /// (unset if no outcome was recorded).
  std::optional<double> time_to_best;
  /// Number of schedules explored when the best outcome was found.
  std::uint64_t schedules_to_best = 0;

  /// Terminal nodes explored — the paper's "number of simulated schedules".
  [[nodiscard]] std::uint64_t schedules_explored() const {
    return schedules_completed + dead_ends;
  }

  /// Folds the per-cutset counters of `other` into this (used by the
  /// parallel driver when merging worker-local stats in cutset order).
  /// Timing fields and the constraint/cutset bookkeeping are left alone —
  /// they describe the whole run, not one cutset's search.
  void accumulate(const SearchStats& other) {
    schedules_completed += other.schedules_completed;
    dead_ends += other.dead_ends;
    sim_steps += other.sim_steps;
    precondition_failures += other.precondition_failures;
    execution_failures += other.execution_failures;
    memoized_failures += other.memoized_failures;
    prefix_prunes += other.prefix_prunes;
    state_clones += other.state_clones;
    object_clones += other.object_clones;
    clones_avoided += other.clones_avoided;
    bytes_cloned += other.bytes_cloned;
    moves_proposed += other.moves_proposed;
    moves_accepted += other.moves_accepted;
    components_resolved += other.components_resolved;
    stream_epochs += other.stream_epochs;
    commit_violations += other.commit_violations;
    if (other.max_commit_lag > max_commit_lag) {
      max_commit_lag = other.max_commit_lag;
    }
    hit_limit = hit_limit || other.hit_limit;
  }
};

/// One "new incumbent best" moment inside a single cutset's search, in
/// worker-local terms: just enough to replay the sequential engine's
/// best-so-far bookkeeping (Selection's ranking fields plus the local
/// schedule count) during the deterministic merge.
struct ImprovementEvent {
  double cost = 0.0;
  bool complete = false;
  std::size_t skipped = 0;
  std::uint64_t schedules_explored = 0;  ///< local terminals when found
  double seconds = 0.0;                  ///< wall seconds when found
};

}  // namespace icecube
