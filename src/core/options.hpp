// Engine configuration: heuristics, failure handling, limits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace icecube {

/// The scheduling heuristic H (§3.3). Controls how the independence
/// relation I narrows the successor candidates of a prefix.
enum class Heuristic : std::uint8_t {
  kAll,    ///< try every D-consistent successor; I is ignored
  kSafe,   ///< try only I-successors of the last action when any exist
  kStrict  ///< try exactly one I-successor when any exists, else S − B
};

[[nodiscard]] constexpr std::string_view to_string(Heuristic h) {
  switch (h) {
    case Heuristic::kAll:
      return "All";
    case Heuristic::kSafe:
      return "Safe";
    case Heuristic::kStrict:
      return "Strict";
  }
  return "?";
}

/// What to do when an action's precondition or execution fails during
/// simulation.
///
/// `kAbortBranch` is the letter of §3.4: the branch below the failing action
/// is abandoned (sibling candidates are still explored). `kSkipAction` drops
/// the failing action from the remainder of the subtree and continues — the
/// behaviour of the later IceCube systems, required to reach "complete"
/// schedules when some actions are inherently doomed (see DESIGN.md §5.3).
enum class FailureMode : std::uint8_t { kAbortBranch, kSkipAction };

[[nodiscard]] constexpr std::string_view to_string(FailureMode m) {
  switch (m) {
    case FailureMode::kAbortBranch:
      return "AbortBranch";
    case FailureMode::kSkipAction:
      return "SkipAction";
  }
  return "?";
}

/// Interpretation of the B set in H=Strict with C=∅ (see DESIGN.md §5.2).
enum class BRule : std::uint8_t {
  kPaperLiteral,  ///< B = {b ∈ S : ∃c ∈ C, c I b} — vacuous when C = ∅
  kLookahead      ///< B = {b ∈ S : ∃c ∈ S \ {b}, c I b}
};

/// Which search engine turns a cutset sub-problem into outcomes. See
/// src/solver/backend.hpp and DESIGN.md §13.
enum class SolverKind : std::uint8_t {
  kDfs,          ///< exhaustive cutset DFS (the paper's search; optimal)
  kGreedy,       ///< one topological construction + replay-with-skip
  kLocalSearch,  ///< seeded SA/tabu over permutations, incremental eval
  kAuto          ///< DFS on small cutsets, local search on large ones
};

[[nodiscard]] constexpr std::string_view to_string(SolverKind k) {
  switch (k) {
    case SolverKind::kDfs:
      return "dfs";
    case SolverKind::kGreedy:
      return "greedy";
    case SolverKind::kLocalSearch:
      return "ls";
    case SolverKind::kAuto:
      return "auto";
  }
  return "?";
}

/// Knobs for the local-search backend (SolverKind::kLocalSearch). The walk
/// is fully determined by `seed` and these parameters — identical runs give
/// identical schedules regardless of thread count.
struct LocalSearchOptions {
  std::uint64_t seed = 0x1cecbe0ULL;
  /// Move proposals before stopping (each proposal may or may not be
  /// evaluated; infeasible proposals count so the loop always terminates).
  std::uint64_t max_moves = 20000;
  /// Stop after this many consecutive proposals without a new incumbent.
  std::uint64_t stall_moves = 5000;
  /// Simulated-annealing temperature schedule: T starts at
  /// `initial_temperature` and is multiplied by `cooling` per proposal,
  /// floored at `min_temperature`. Uphill moves of cost delta d are accepted
  /// with probability exp(-d / T).
  double initial_temperature = 1.5;
  double cooling = 0.9995;
  double min_temperature = 0.01;
  /// Recently-moved actions may not move again for this many accepted moves
  /// (aspiration: a move that improves the incumbent ignores tabu). 0
  /// disables the tabu list.
  std::size_t tabu_tenure = 24;
  /// Maximum distance an action travels in one reinsert/rescue move.
  std::size_t reinsert_window = 96;
  /// Cap on how far back (in schedule positions) a rescue move may hop a
  /// failed action to land in front of its executed conflict partner
  /// (widened to at least 16 checkpoint intervals). 0 = unlimited: a far
  /// hop re-simulates a long suffix, so unlimited reach is best paired
  /// with a wall-clock budget.
  std::size_t rescue_scan = 0;
  /// Move-mix weights (normalised internally): target-overlap-guided rescue
  /// of failed actions, windowed reinsertion, adjacent swap, drop-flip.
  double w_rescue = 0.40;
  double w_reinsert = 0.30;
  double w_swap = 0.25;
  double w_flip = 0.05;
  /// COW snapshot checkpoint spacing for suffix re-simulation; 0 derives
  /// max(16, n/128) capped at 512 from the cutset size.
  std::size_t checkpoint_interval = 0;
};

/// Hard bounds on the search. The paper caps runs at 100,000 simulations;
/// we additionally support wall-clock and step budgets.
struct SearchLimits {
  /// Maximum number of schedules *explored* (terminal nodes: completed or
  /// dead-ended), mirroring the paper's simulation cap.
  std::uint64_t max_schedules = 100000;
  /// Maximum individual action simulations (precondition+execute attempts).
  std::uint64_t max_steps = UINT64_MAX;
  /// Wall-clock budget in seconds; <= 0 disables.
  double max_seconds = 0.0;
};

/// Top-level reconciler configuration.
struct ReconcilerOptions {
  Heuristic heuristic = Heuristic::kSafe;
  FailureMode failure_mode = FailureMode::kAbortBranch;
  BRule b_rule = BRule::kLookahead;
  SearchLimits limits;

  /// Which solver backend runs each cutset sub-problem (DESIGN.md §13).
  /// kDfs preserves the historical engine bit-for-bit; kGreedy and
  /// kLocalSearch scale to logs the DFS cannot finish; kAuto keeps DFS as
  /// the optimality oracle on cutsets no larger than `auto_dfs_max_actions`
  /// and hands the rest to local search.
  SolverKind backend = SolverKind::kDfs;
  LocalSearchOptions local_search;
  /// kAuto: sub-problems with at most this many schedulable actions go to
  /// DFS, larger ones to local search.
  std::size_t auto_dfs_max_actions = 32;
  /// Above this action count the greedy/local-search backends skip the
  /// dense constraint matrix, transitive closure and cutset analysis
  /// entirely and build a sparse constraint graph instead (the dense
  /// structures are Θ(n²) and wall off 10k+-action logs). DFS always uses
  /// the dense path — it needs the closed relations.
  std::size_t dense_graph_limit = 4096;

  /// How many best outcomes to retain (ranked by the policy cost).
  std::size_t keep_outcomes = 8;
  /// Record dead-end prefixes as (partial) outcomes, not just complete
  /// schedules. The selection stage ranks both; §4.3's "solutions equivalent
  /// to log 1 alone" are such partial outcomes.
  bool record_partial_outcomes = true;
  /// Stop the whole search as soon as the first complete schedule is found.
  bool stop_at_first_complete = false;

  /// Anytime degradation: when `limits` exhaust without any complete
  /// schedule, fall back to a greedy-insertion pass over the action set and
  /// offer its (valid, non-optimal) schedule alongside whatever partial
  /// outcomes the search retained. The reconcile result is then marked
  /// `degraded`. See core/degrade.hpp.
  bool degrade_on_exhaustion = true;

  /// Static-equivalence pruning (§2: "recognises that other solutions are
  /// statically equivalent and do not need to be evaluated"). Schedules that
  /// differ only by transpositions of adjacent fully-commuting actions
  /// (safe in both directions) reach the same final state; when enabled the
  /// search explores only the representatives with no adjacent commuting
  /// inversion (the trace-monoid normal-form characterisation). Sound for
  /// H=All on the set of reachable final states; under Safe/Strict it
  /// composes with (and can compound) the heuristics' own incompleteness.
  bool prune_equivalent = false;

  /// Failure memoization (§6: "use the causality information ... to
  /// identify schedules that will fail identically"). An action's dynamic
  /// outcome depends only on the state of its target objects, which is
  /// determined by the ordered subsequence of executed actions sharing a
  /// target with it. Failures are cached under that causal key and replayed
  /// without re-simulating. Requires actions to read and write only their
  /// declared targets (true of every substrate in this repository).
  bool memoize_failures = false;

  /// Oracle switch for the state-management layer: when set, every universe
  /// copy in the search deep-clones every object (the pre-COW behaviour)
  /// instead of sharing copy-on-write slots. Results are bit-for-bit
  /// identical in both modes — only the `object_clones` / `clones_avoided` /
  /// `bytes_cloned` counters (and the wall clock) differ. Kept, like the
  /// dense constraint builder, as the reference the equivalence tests and
  /// `bench_state` measure the COW path against.
  bool eager_state_copies = false;

  /// Caps for the cycle/cutset analysis.
  std::size_t max_cycles = 10000;
  std::size_t max_cutsets = 64;

  /// H=Strict picks "one action in C arbitrarily"; with 0 the first
  /// candidate (deterministic) is taken, otherwise a seeded pseudo-random
  /// member.
  std::uint64_t strict_pick_seed = 0;

  /// Worker threads for the parallel engine. Independent cutsets' schedule
  /// searches run concurrently and static-constraint pairs are sharded
  /// across the same pool; results are merged in cutset order with budgets
  /// carved from `limits`, so outcomes, schedule orderings and (non-timing)
  /// stats are bit-for-bit identical for every thread count.
  ///
  ///   1 — fully sequential (default; the pre-parallel engine, no pool)
  ///   0 — one lane per hardware thread
  ///   N — N lanes
  ///
  /// With threads != 1 the attached Policy's hooks are invoked from worker
  /// threads concurrently and must be thread-safe; stateless policies (the
  /// default Policy, JigsawPolicy, ...) qualify as-is. Policies that
  /// accumulate state across outcomes or cutsets should stay at threads=1.
  std::size_t threads = 1;
};

}  // namespace icecube
