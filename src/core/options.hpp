// Engine configuration: heuristics, failure handling, limits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace icecube {

/// The scheduling heuristic H (§3.3). Controls how the independence
/// relation I narrows the successor candidates of a prefix.
enum class Heuristic : std::uint8_t {
  kAll,    ///< try every D-consistent successor; I is ignored
  kSafe,   ///< try only I-successors of the last action when any exist
  kStrict  ///< try exactly one I-successor when any exists, else S − B
};

[[nodiscard]] constexpr std::string_view to_string(Heuristic h) {
  switch (h) {
    case Heuristic::kAll:
      return "All";
    case Heuristic::kSafe:
      return "Safe";
    case Heuristic::kStrict:
      return "Strict";
  }
  return "?";
}

/// What to do when an action's precondition or execution fails during
/// simulation.
///
/// `kAbortBranch` is the letter of §3.4: the branch below the failing action
/// is abandoned (sibling candidates are still explored). `kSkipAction` drops
/// the failing action from the remainder of the subtree and continues — the
/// behaviour of the later IceCube systems, required to reach "complete"
/// schedules when some actions are inherently doomed (see DESIGN.md §5.3).
enum class FailureMode : std::uint8_t { kAbortBranch, kSkipAction };

[[nodiscard]] constexpr std::string_view to_string(FailureMode m) {
  switch (m) {
    case FailureMode::kAbortBranch:
      return "AbortBranch";
    case FailureMode::kSkipAction:
      return "SkipAction";
  }
  return "?";
}

/// Interpretation of the B set in H=Strict with C=∅ (see DESIGN.md §5.2).
enum class BRule : std::uint8_t {
  kPaperLiteral,  ///< B = {b ∈ S : ∃c ∈ C, c I b} — vacuous when C = ∅
  kLookahead      ///< B = {b ∈ S : ∃c ∈ S \ {b}, c I b}
};

/// Hard bounds on the search. The paper caps runs at 100,000 simulations;
/// we additionally support wall-clock and step budgets.
struct SearchLimits {
  /// Maximum number of schedules *explored* (terminal nodes: completed or
  /// dead-ended), mirroring the paper's simulation cap.
  std::uint64_t max_schedules = 100000;
  /// Maximum individual action simulations (precondition+execute attempts).
  std::uint64_t max_steps = UINT64_MAX;
  /// Wall-clock budget in seconds; <= 0 disables.
  double max_seconds = 0.0;
};

/// Top-level reconciler configuration.
struct ReconcilerOptions {
  Heuristic heuristic = Heuristic::kSafe;
  FailureMode failure_mode = FailureMode::kAbortBranch;
  BRule b_rule = BRule::kLookahead;
  SearchLimits limits;

  /// How many best outcomes to retain (ranked by the policy cost).
  std::size_t keep_outcomes = 8;
  /// Record dead-end prefixes as (partial) outcomes, not just complete
  /// schedules. The selection stage ranks both; §4.3's "solutions equivalent
  /// to log 1 alone" are such partial outcomes.
  bool record_partial_outcomes = true;
  /// Stop the whole search as soon as the first complete schedule is found.
  bool stop_at_first_complete = false;

  /// Anytime degradation: when `limits` exhaust without any complete
  /// schedule, fall back to a greedy-insertion pass over the action set and
  /// offer its (valid, non-optimal) schedule alongside whatever partial
  /// outcomes the search retained. The reconcile result is then marked
  /// `degraded`. See core/degrade.hpp.
  bool degrade_on_exhaustion = true;

  /// Static-equivalence pruning (§2: "recognises that other solutions are
  /// statically equivalent and do not need to be evaluated"). Schedules that
  /// differ only by transpositions of adjacent fully-commuting actions
  /// (safe in both directions) reach the same final state; when enabled the
  /// search explores only the representatives with no adjacent commuting
  /// inversion (the trace-monoid normal-form characterisation). Sound for
  /// H=All on the set of reachable final states; under Safe/Strict it
  /// composes with (and can compound) the heuristics' own incompleteness.
  bool prune_equivalent = false;

  /// Failure memoization (§6: "use the causality information ... to
  /// identify schedules that will fail identically"). An action's dynamic
  /// outcome depends only on the state of its target objects, which is
  /// determined by the ordered subsequence of executed actions sharing a
  /// target with it. Failures are cached under that causal key and replayed
  /// without re-simulating. Requires actions to read and write only their
  /// declared targets (true of every substrate in this repository).
  bool memoize_failures = false;

  /// Oracle switch for the state-management layer: when set, every universe
  /// copy in the search deep-clones every object (the pre-COW behaviour)
  /// instead of sharing copy-on-write slots. Results are bit-for-bit
  /// identical in both modes — only the `object_clones` / `clones_avoided` /
  /// `bytes_cloned` counters (and the wall clock) differ. Kept, like the
  /// dense constraint builder, as the reference the equivalence tests and
  /// `bench_state` measure the COW path against.
  bool eager_state_copies = false;

  /// Caps for the cycle/cutset analysis.
  std::size_t max_cycles = 10000;
  std::size_t max_cutsets = 64;

  /// H=Strict picks "one action in C arbitrarily"; with 0 the first
  /// candidate (deterministic) is taken, otherwise a seeded pseudo-random
  /// member.
  std::uint64_t strict_pick_seed = 0;

  /// Worker threads for the parallel engine. Independent cutsets' schedule
  /// searches run concurrently and static-constraint pairs are sharded
  /// across the same pool; results are merged in cutset order with budgets
  /// carved from `limits`, so outcomes, schedule orderings and (non-timing)
  /// stats are bit-for-bit identical for every thread count.
  ///
  ///   1 — fully sequential (default; the pre-parallel engine, no pool)
  ///   0 — one lane per hardware thread
  ///   N — N lanes
  ///
  /// With threads != 1 the attached Policy's hooks are invoked from worker
  /// threads concurrently and must be thread-safe; stateless policies (the
  /// default Policy, JigsawPolicy, ...) qualify as-is. Policies that
  /// accumulate state across outcomes or cutsets should stay at threads=1.
  std::size_t threads = 1;
};

}  // namespace icecube
