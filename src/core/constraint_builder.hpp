// Pairwise static-constraint matrix (§2.3).
//
// The scheduler compares every pair of actions, across logs and within each
// log, and records `constraint(a, b)` — whether `a` may precede `b`. The
// relation is built from three sources: log order, target identity, and the
// per-object `order` method.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/constraint.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"

namespace icecube {

class ThreadPool;

/// Dense N×N matrix of `Constraint` values over a flattened action set.
class ConstraintMatrix {
 public:
  ConstraintMatrix() = default;
  explicit ConstraintMatrix(std::size_t n)
      : n_(n), cells_(n * n, Constraint::kSafe) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] Constraint at(ActionId a, ActionId b) const {
    return cells_[a.index() * n_ + b.index()];
  }
  void set(ActionId a, ActionId b, Constraint c) {
    cells_[a.index() * n_ + b.index()] = c;
  }

 private:
  std::size_t n_ = 0;
  std::vector<Constraint> cells_;
};

/// Computes `constraint(a, b)` for one pair of action records, per the
/// summary rules of §2.3:
///
///   constraint(a,b) = safe                      if targets(a) ∩ targets(b) = ∅
///                   = safe                      if a before b in the same log
///                   = most-constraining over common targets of
///                     target.order(a, b, rel)   otherwise
///
/// `universe` supplies the order methods; constraint evaluation never touches
/// mutable object state.
[[nodiscard]] Constraint evaluate_constraint(const Universe& universe,
                                             const ActionRecord& a,
                                             const ActionRecord& b);

/// Same evaluation, but over a caller-supplied shared-target set, for callers
/// (the incremental graph) that already know which objects a pair has in
/// common and must not pay a fresh `targets()` extraction per direction. The
/// iteration order of `shared` does not affect the result; `order_calls` is
/// incremented once per object-order query, matching the batch builders.
[[nodiscard]] Constraint evaluate_constraint_over(
    const Universe& universe, const ActionRecord& a, const ActionRecord& b,
    const std::vector<ObjectId>& shared, std::uint64_t& order_calls);

/// Work counters for one matrix construction. The sparse builder's whole
/// point is doing strictly less of this than the dense all-pairs scan, so
/// both builders count and the equivalence tests compare.
struct ConstraintBuildStats {
  /// Ordered (a, b) pairs for which an evaluation ran. The dense builder
  /// evaluates all n·(n−1); the sparse builder only the directions of pairs
  /// sharing at least one target.
  std::uint64_t pairs_evaluated = 0;
  /// Shared-target set computations. The dense builder recomputes the set
  /// for (a, b) and again for (b, a); the sparse builder computes it once
  /// per unordered pair.
  std::uint64_t target_set_builds = 0;
  /// `SharedObject::order` invocations.
  std::uint64_t order_calls = 0;
};

/// Knobs for the sparse builder.
struct ConstraintBuildOptions {
  /// Shard pair evaluation across this pool (the calling thread
  /// participates). Null = evaluate on the calling thread only. Results are
  /// identical either way: shards write disjoint matrix cells and the value
  /// of a pair never depends on any other pair.
  ThreadPool* pool = nullptr;
  /// Filled with the work counters when non-null.
  ConstraintBuildStats* stats = nullptr;
};

/// Builds the full matrix over `records` via the target→actions inverted
/// index: only pairs sharing at least one target are evaluated (everything
/// else is `safe` by §2.3 rule 1), the shared-target set is computed once
/// per unordered pair and reused for both directions, and evaluation is
/// optionally sharded across a thread pool. Produces a matrix identical to
/// `build_constraints_dense`.
[[nodiscard]] ConstraintMatrix build_constraints(
    const Universe& universe, const std::vector<ActionRecord>& records,
    const ConstraintBuildOptions& options = {});

/// The original O(n²) all-pairs reference builder. Kept as the oracle for
/// the sparse/dense equivalence tests and for complexity comparisons.
[[nodiscard]] ConstraintMatrix build_constraints_dense(
    const Universe& universe, const std::vector<ActionRecord>& records,
    ConstraintBuildStats* stats = nullptr);

/// Per-action bitsets of the *other* actions sharing at least one target,
/// built through the same target→actions inverted index the sparse matrix
/// builder uses — O(Σ per-target group²) bit sets instead of the all-pairs
/// O(n²·t²) scan. The §6 failure-memoization causal keys consume this; the
/// reconcilers build it once and share it across every cutset's simulator.
[[nodiscard]] std::vector<Bitset> build_target_overlap(
    const std::vector<ActionRecord>& records);

/// Renders the matrix as an aligned text table (used by the figure benches
/// and handy in test failures).
[[nodiscard]] std::string render_matrix(
    const ConstraintMatrix& matrix, const std::vector<std::string>& labels);

}  // namespace icecube
