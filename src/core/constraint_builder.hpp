// Pairwise static-constraint matrix (§2.3).
//
// The scheduler compares every pair of actions, across logs and within each
// log, and records `constraint(a, b)` — whether `a` may precede `b`. The
// relation is built from three sources: log order, target identity, and the
// per-object `order` method.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/constraint.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Dense N×N matrix of `Constraint` values over a flattened action set.
class ConstraintMatrix {
 public:
  ConstraintMatrix() = default;
  explicit ConstraintMatrix(std::size_t n)
      : n_(n), cells_(n * n, Constraint::kSafe) {}

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] Constraint at(ActionId a, ActionId b) const {
    return cells_[a.index() * n_ + b.index()];
  }
  void set(ActionId a, ActionId b, Constraint c) {
    cells_[a.index() * n_ + b.index()] = c;
  }

 private:
  std::size_t n_ = 0;
  std::vector<Constraint> cells_;
};

/// Computes `constraint(a, b)` for one pair of action records, per the
/// summary rules of §2.3:
///
///   constraint(a,b) = safe                      if targets(a) ∩ targets(b) = ∅
///                   = safe                      if a before b in the same log
///                   = most-constraining over common targets of
///                     target.order(a, b, rel)   otherwise
///
/// `universe` supplies the order methods; constraint evaluation never touches
/// mutable object state.
[[nodiscard]] Constraint evaluate_constraint(const Universe& universe,
                                             const ActionRecord& a,
                                             const ActionRecord& b);

/// Builds the full matrix over `records`.
[[nodiscard]] ConstraintMatrix build_constraints(
    const Universe& universe, const std::vector<ActionRecord>& records);

/// Renders the matrix as an aligned text table (used by the figure benches
/// and handy in test failures).
[[nodiscard]] std::string render_matrix(
    const ConstraintMatrix& matrix, const std::vector<std::string>& labels);

}  // namespace icecube
