// The selection stage (§2, §3.5): rank outcomes and keep the best K.
#pragma once

#include <cstddef>
#include <vector>

#include "core/outcome.hpp"
#include "core/policy.hpp"

namespace icecube {

/// Collects outcomes during the search, scoring each with the policy cost
/// function and retaining the `keep` cheapest. Completeness wins ties:
/// between equal costs a complete outcome ranks above an incomplete one.
class Selection {
 public:
  Selection(Policy& policy, std::size_t keep)
      : policy_(&policy), keep_(keep == 0 ? 1 : keep) {}

  /// Scores and files `outcome`. Returns true iff it became the new best.
  bool offer(Outcome&& outcome);

  /// Would `offer` retain an outcome with these ranking fields? The
  /// simulator asks before materialising an outcome's final state; the
  /// answer must agree exactly with `offer`'s insert-or-drop decision
  /// (`outcome.cost` must already hold the policy cost).
  [[nodiscard]] bool would_keep(const Outcome& outcome) const {
    if (kept_.size() < keep_) return true;
    return better(outcome, kept_.back());
  }

  [[nodiscard]] bool empty() const { return kept_.empty(); }
  [[nodiscard]] double best_cost() const;
  [[nodiscard]] const Outcome& best() const { return kept_.front(); }

  /// All retained outcomes, best first.
  [[nodiscard]] std::vector<Outcome> take() { return std::move(kept_); }
  [[nodiscard]] const std::vector<Outcome>& outcomes() const { return kept_; }

 private:
  static bool better(const Outcome& a, const Outcome& b);

  Policy* policy_;
  std::size_t keep_;
  std::vector<Outcome> kept_;  // sorted, best first
};

}  // namespace icecube
