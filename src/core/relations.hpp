// The dependence (D) and independence (I) relations (§3.1).
//
// The constraint matrix maps onto two relations consumed by the scheduler:
//
//   constraint(a,b) = safe   ⇒  a I b   (a immediately followed by b is
//                                        known/likely failure-free)
//   constraint(a,b) = unsafe ⇒  b D a   (b must precede a in any schedule
//                                        containing both)
//   constraint(a,b) = maybe  ⇒  nothing
//
// D is reflexive and transitive in the paper's formulation; we store the raw
// edges (needed for cycle analysis) and the transitive closure (needed for
// correct scheduling once a cutset removes vertices). I is neither reflexive
// nor transitive and is stored as given.
#pragma once

#include <cstddef>
#include <vector>

#include "core/constraint_builder.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Dependence/independence relations over a dense action-id space.
class Relations {
 public:
  Relations() = default;
  explicit Relations(std::size_t n);

  /// Derives D and I from a constraint matrix per the table above.
  static Relations from_constraints(const ConstraintMatrix& matrix);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Adds a raw dependence edge: `a` must precede `b`. (No closure update;
  /// call `close()` after the last edge.)
  void add_dependence(ActionId a, ActionId b);
  /// Declares `a I b`.
  void add_independence(ActionId a, ActionId b);

  /// Recomputes the transitive closure of D from the raw edges.
  void close();

  /// Returns a copy with the vertices in `removed` isolated (every raw D
  /// edge touching them dropped) and the closure recomputed. Required when
  /// searching under a cutset: inside a dependence cycle the closure makes
  /// every member precede every other, which would deadlock the remaining
  /// members unless the cut vertices' edges are actually gone.
  [[nodiscard]] Relations restricted(const Bitset& removed) const;

  /// Raw (un-closed) dependence edge a → b?
  [[nodiscard]] bool depends_raw(ActionId a, ActionId b) const {
    return raw_succ_[a.index()].test(b.index());
  }
  /// Closed dependence: must `a` precede `b` (possibly transitively)?
  [[nodiscard]] bool depends(ActionId a, ActionId b) const {
    return closed_succ_[a.index()].test(b.index());
  }
  [[nodiscard]] bool independent(ActionId a, ActionId b) const {
    return indep_[a.index()].test(b.index());
  }

  /// Closed predecessors of `b`: every action that must precede it.
  [[nodiscard]] const Bitset& predecessors(ActionId b) const {
    return closed_pred_[b.index()];
  }
  /// I-successors of `a`: every c with a I c.
  [[nodiscard]] const Bitset& independents_of(ActionId a) const {
    return indep_[a.index()];
  }
  /// I-predecessors of `b`: every c with c I b.
  [[nodiscard]] const Bitset& independent_predecessors_of(ActionId b) const {
    return indep_pred_[b.index()];
  }
  /// Raw successors of `a` (direct D edges out of `a`).
  [[nodiscard]] const Bitset& raw_successors(ActionId a) const {
    return raw_succ_[a.index()];
  }

  /// Total number of raw dependence edges / independence pairs.
  [[nodiscard]] std::size_t dependence_edge_count() const;
  [[nodiscard]] std::size_t independence_pair_count() const;

 private:
  std::size_t n_ = 0;
  std::vector<Bitset> raw_succ_;     // raw D edges, a → {b : a before b}
  std::vector<Bitset> closed_succ_;  // transitive closure of raw_succ_
  std::vector<Bitset> closed_pred_;  // transpose of closed_succ_
  std::vector<Bitset> indep_;        // I, a → {c : a I c}
  std::vector<Bitset> indep_pred_;   // transpose of indep_
};

}  // namespace icecube
