// Action tags (§2.2).
//
// A tag is the action's private data made visible to static analysis: it
// records the operation type and its parameters. `order` methods inspect
// tags — never object state — which is exactly what makes the constraints
// they produce *static*.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace icecube {

/// Operation name plus integral parameters. Kept deliberately simple: every
/// substrate in this repository encodes its parameters as small integers
/// (piece numbers, edges, amounts, slot indices) so tags stay cheap to copy
/// and trivially comparable.
struct Tag {
  std::string op;
  std::vector<std::int64_t> params;
  /// String parameters (e.g. file-system paths). Kept separate from the
  /// integral ones; most substrates leave this empty.
  std::vector<std::string> str_params;

  Tag() = default;
  Tag(std::string operation, std::vector<std::int64_t> parameters = {},
      std::vector<std::string> strings = {})
      : op(std::move(operation)),
        params(std::move(parameters)),
        str_params(std::move(strings)) {}

  [[nodiscard]] std::int64_t param(std::size_t i) const { return params.at(i); }
  [[nodiscard]] const std::string& str_param(std::size_t i) const {
    return str_params.at(i);
  }

  friend bool operator==(const Tag&, const Tag&) = default;

  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << op << '(';
    bool first = true;
    for (const auto& p : params) {
      if (!first) os << ',';
      os << p;
      first = false;
    }
    for (const auto& s : str_params) {
      if (!first) os << ',';
      os << s;
      first = false;
    }
    os << ')';
    return os.str();
  }
};

}  // namespace icecube
