#include "core/relations.hpp"

namespace icecube {

Relations::Relations(std::size_t n)
    : n_(n),
      raw_succ_(n, Bitset(n)),
      closed_succ_(n, Bitset(n)),
      closed_pred_(n, Bitset(n)),
      indep_(n, Bitset(n)),
      indep_pred_(n, Bitset(n)) {}

Relations Relations::from_constraints(const ConstraintMatrix& matrix) {
  const std::size_t n = matrix.size();
  Relations rel(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      switch (matrix.at(ActionId(i), ActionId(j))) {
        case Constraint::kSafe:
          rel.add_independence(ActionId(i), ActionId(j));
          break;
        case Constraint::kUnsafe:
          // "a before b disallowed" ⇒ b must precede a.
          rel.add_dependence(ActionId(j), ActionId(i));
          break;
        case Constraint::kMaybe:
          break;
      }
    }
  }
  rel.close();
  return rel;
}

void Relations::add_dependence(ActionId a, ActionId b) {
  raw_succ_[a.index()].set(b.index());
}

void Relations::add_independence(ActionId a, ActionId b) {
  indep_[a.index()].set(b.index());
  indep_pred_[b.index()].set(a.index());
}

void Relations::close() {
  // Warshall over bit rows: O(n^2 * n/64). n is at most a few hundred here.
  for (std::size_t i = 0; i < n_; ++i) closed_succ_[i] = raw_succ_[i];
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (closed_succ_[i].test(k)) closed_succ_[i] |= closed_succ_[k];
    }
  }
  for (std::size_t i = 0; i < n_; ++i) closed_pred_[i].clear();
  for (std::size_t i = 0; i < n_; ++i) {
    closed_succ_[i].for_each(
        [this, i](std::size_t j) { closed_pred_[j].set(i); });
  }
}

Relations Relations::restricted(const Bitset& removed) const {
  Relations out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.indep_[i] = indep_[i];
    out.indep_pred_[i] = indep_pred_[i];
    if (removed.test(i)) continue;  // leave raw_succ_ row empty
    out.raw_succ_[i] = raw_succ_[i];
    out.raw_succ_[i] -= removed;
  }
  out.close();
  return out;
}

std::size_t Relations::dependence_edge_count() const {
  std::size_t total = 0;
  for (const auto& row : raw_succ_) total += row.count();
  return total;
}

std::size_t Relations::independence_pair_count() const {
  std::size_t total = 0;
  for (const auto& row : indep_) total += row.count();
  return total;
}

}  // namespace icecube
