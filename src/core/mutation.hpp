// Test-only protocol mutation hooks for the model checker (src/mc).
//
// A model checker is only as credible as its ability to find bugs that
// exist. Each `ProtocolMutant` re-introduces one historically-fixed (or
// historically-plausible) protocol defect behind an always-compiled,
// default-off switch, so the mutation tests can assert that bounded
// exhaustive exploration *kills* every mutant — finds an invariant
// violation within the CI state budget — while the shipped protocol
// explores clean on the same configuration.
//
// The hooks are deliberately a single process-global toggle rather than a
// per-instance option: the defects live deep inside `GossipNode::receive`
// and `CommitEngine::winner`, which have no test-configuration channel, and
// threading one through every constructor would put permanent API surface
// around code whose only purpose is to be wrong. The toggle is not
// thread-safe by design — the model checker and the mutation tests are
// single-threaded drivers; concurrent reconciliation code never reads it
// with a mutant active (the default `kNone` read is a benign constant).
//
// Always use the RAII guard in tests so a failing assertion cannot leak an
// active mutant into later test cases.
#pragma once

#include <cstdint>
#include <string_view>

namespace icecube {

/// One seeded protocol defect. Values are stable identifiers — they appear
/// in `mc-spec` capture frames (src/mc/mc_spec_codec.hpp) so a mutant
/// counterexample replays bit-exactly; do not renumber.
enum class ProtocolMutant : std::uint8_t {
  kNone = 0,
  /// CommitEngine::winner treats unheard voters as if they had abstained:
  /// the plurality rule decides on partial tallies that the missing votes
  /// could still overturn (the off-by-one the strict `> unheard` bound
  /// exists to prevent). Kills via commit-divergence/commit-irrevocable.
  kPluralityIgnoreUnheard = 1,
  /// GossipNode::receive drops the dominated side's committed actions on a
  /// state transfer instead of demoting them to pending ("demote, never
  /// drop"). Kills via conservation.
  kTransferDropDemoted = 2,
  /// GossipNode::receive skips the stable-prefix guard, letting a
  /// dominating gossip lineage rewrite an irrevocably decided prefix.
  /// Kills via stable-prefix / conservation.
  kStablePrefixRewrite = 3,
  /// GossipNode::adopt_merge forgets the epoch bump: a merge adopts
  /// max(epochs) instead of max(epochs) + 1, so the new committed state
  /// need not dominate the old one. Kills via commit-order.
  kMergeEpochNoBump = 4,
  /// GossipNode::rebase drops demoted actions instead of re-pending them
  /// when a commit decision rewrites local committed work. Kills via
  /// conservation.
  kRebaseDropDemoted = 5,
};

inline constexpr std::uint8_t kProtocolMutantMax = 5;

[[nodiscard]] constexpr std::string_view to_string(ProtocolMutant m) {
  switch (m) {
    case ProtocolMutant::kNone:
      return "none";
    case ProtocolMutant::kPluralityIgnoreUnheard:
      return "plurality-ignore-unheard";
    case ProtocolMutant::kTransferDropDemoted:
      return "transfer-drop-demoted";
    case ProtocolMutant::kStablePrefixRewrite:
      return "stable-prefix-rewrite";
    case ProtocolMutant::kMergeEpochNoBump:
      return "merge-epoch-no-bump";
    case ProtocolMutant::kRebaseDropDemoted:
      return "rebase-drop-demoted";
  }
  return "?";
}

/// The process-global toggle; see file comment for why it is global.
inline ProtocolMutant& active_protocol_mutant() {
  static ProtocolMutant active = ProtocolMutant::kNone;
  return active;
}

/// The hook the protocol code calls. Reads a constant in production use.
[[nodiscard]] inline bool mutant_enabled(ProtocolMutant m) {
  return active_protocol_mutant() == m;
}

/// RAII activation — the only sanctioned way to switch a mutant on.
class ScopedProtocolMutant {
 public:
  explicit ScopedProtocolMutant(ProtocolMutant m)
      : previous_(active_protocol_mutant()) {
    active_protocol_mutant() = m;
  }
  ~ScopedProtocolMutant() { active_protocol_mutant() = previous_; }
  ScopedProtocolMutant(const ScopedProtocolMutant&) = delete;
  ScopedProtocolMutant& operator=(const ScopedProtocolMutant&) = delete;

 private:
  ProtocolMutant previous_;
};

}  // namespace icecube
