#include "core/conflict_report.hpp"

#include <sstream>

namespace icecube {

namespace {

std::string action_label(const Reconciler& reconciler, ActionId id) {
  const ActionRecord& rec = reconciler.records()[id.index()];
  std::ostringstream os;
  os << "action " << id.value() << " (log " << rec.log.value() << " pos "
     << rec.position << ": " << rec.action->describe() << ")";
  return os.str();
}

}  // namespace

std::string explain_conflicts(const Reconciler& reconciler,
                              const Outcome& outcome,
                              const ConflictReporter* reporter) {
  std::ostringstream os;
  if (outcome.cutset.empty() && outcome.skipped.empty()) {
    os << "no conflicts: every action was scheduled\n";
    return os.str();
  }

  const ConstraintMatrix& matrix = reconciler.constraints();
  for (ActionId cut : outcome.cutset) {
    os << action_label(reconciler, cut)
       << " was excluded by a static conflict with:";
    bool any = false;
    for (std::size_t other = 0; other < matrix.size(); ++other) {
      if (other == cut.index()) continue;
      // A mutual-unsafe pair (or unsafe cycle edge) with the cut action.
      if (matrix.at(cut, ActionId(other)) == Constraint::kUnsafe &&
          matrix.at(ActionId(other), cut) == Constraint::kUnsafe) {
        os << "\n    " << action_label(reconciler, ActionId(other))
           << " (mutually unsafe)";
        any = true;
      }
    }
    if (!any) os << "\n    other members of a dependence cycle";
    os << '\n';
  }

  for (ActionId dropped : outcome.skipped) {
    os << action_label(reconciler, dropped) << " was dropped";
    if (reporter != nullptr) {
      const auto it = reporter->failures().find(dropped);
      if (it != reporter->failures().end()) {
        os << ": its "
           << (it->second.kind == FailureKind::kPrecondition
                   ? "precondition"
                   : "execution")
           << " failed (first after " << it->second.prefix_length
           << " scheduled action(s), " << it->second.occurrences
           << " failure(s) overall)";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace icecube
