#include "core/graphviz.hpp"

#include <sstream>

namespace icecube {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string node_label(const ActionRecord& record) {
  std::ostringstream os;
  os << "L" << record.log.value() << ':' << record.position << "\\n"
     << escape(record.action->describe());
  return os.str();
}

void emit_nodes(std::ostringstream& os,
                const std::vector<ActionRecord>& records,
                const Cutset& cutset) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    bool cut = false;
    for (ActionId a : cutset.actions) cut = cut || a.index() == i;
    os << "  a" << i << " [label=\"" << node_label(records[i]) << '"';
    if (cut) os << ", style=filled, fillcolor=lightgray";
    os << "];\n";
  }
}

}  // namespace

std::string to_dot(const std::vector<ActionRecord>& records,
                   const Relations& relations, const Cutset& cutset) {
  std::ostringstream os;
  os << "digraph icecube_relations {\n"
     << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  emit_nodes(os, records, cutset);
  for (std::size_t a = 0; a < records.size(); ++a) {
    relations.raw_successors(ActionId(a)).for_each([&os, a](std::size_t b) {
      if (a != b) os << "  a" << a << " -> a" << b << ";\n";
    });
  }
  for (std::size_t a = 0; a < records.size(); ++a) {
    relations.independents_of(ActionId(a)).for_each([&os, a](std::size_t b) {
      if (a != b) {
        os << "  a" << a << " -> a" << b
           << " [style=dashed, color=gray, constraint=false];\n";
      }
    });
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const std::vector<ActionRecord>& records,
                   const ConstraintMatrix& matrix) {
  std::ostringstream os;
  os << "digraph icecube_constraints {\n"
     << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  emit_nodes(os, records, Cutset{});
  for (std::size_t a = 0; a < records.size(); ++a) {
    for (std::size_t b = 0; b < records.size(); ++b) {
      if (a == b) continue;
      switch (matrix.at(ActionId(a), ActionId(b))) {
        case Constraint::kSafe:
          os << "  a" << a << " -> a" << b << " [color=green];\n";
          break;
        case Constraint::kUnsafe:
          os << "  a" << a << " -> a" << b << " [color=red];\n";
          break;
        case Constraint::kMaybe:
          break;  // no static information: omitted
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace icecube
