// The interleaved scheduling + simulation stage (§3.3–§3.4).
//
// Scheduler and simulator recursively explore every schedule consistent with
// D and I (as narrowed by the heuristic H). Each step evaluates the next
// action's precondition against the current state and, on success, executes
// it on a shadow copy; failures abort the branch (or drop the action, under
// FailureMode::kSkipAction). Terminal prefixes become outcomes handed to the
// selection stage.
//
// The search is implemented iteratively over an explicit frame stack, which
// makes it *resumable*: `start()` then repeated `step(budget)` calls explore
// a bounded number of schedules at a time. That is the mechanism behind the
// paper's pipelined/interactive mode (§2: "they run in a pipeline with
// various feedback loops") — see IncrementalReconciler.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/relations.hpp"
#include "core/scheduler.hpp"
#include "core/selection.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Depth-first schedule explorer for a single cutset. The reconciler creates
/// one per accepted cutset, sharing the selection stage and statistics.
class Simulator {
 public:
  /// `relations` must already be restricted to the cutset (see
  /// `Relations::restricted`); `clock` is the whole-run stopwatch used for
  /// time-to-best reporting, `deadline` the fixed point at which the search
  /// must stop (capture it once per run with `Deadline::after_seconds`).
  /// The deadline is immutable, so worker threads of the parallel driver
  /// can share one instance and poll it without synchronisation.
  ///
  /// `target_overlap` (per action: the other actions sharing a target, as
  /// built by `build_target_overlap`) feeds the §6 causal keys; the
  /// reconcilers build it once over the full action set and share it across
  /// every cutset's simulator. Null makes the simulator build its own on
  /// first use (only if `memoize_failures` is on).
  Simulator(const std::vector<ActionRecord>& records,
            const Relations& relations, const ReconcilerOptions& options,
            Policy& policy, Selection& selection, SearchStats& stats,
            const Stopwatch& clock, Deadline deadline,
            const std::vector<Bitset>* target_overlap = nullptr);

  /// Mirrors every "new incumbent best" into `log` (see ImprovementEvent);
  /// the parallel driver uses this to reconstruct the sequential engine's
  /// best-so-far bookkeeping during the merge. Null disables (default).
  void set_improvement_log(std::vector<ImprovementEvent>* log) {
    improvements_ = log;
  }

  /// Explores all schedules for `cutset` from `initial`. Returns false when
  /// the global search must stop (limit reached or policy said stop).
  [[nodiscard]] bool run(const Cutset& cutset, const Universe& initial);

  /// Resumable interface: `start` primes the search, each `step` explores at
  /// most `schedule_budget` further terminal nodes. Returns true while more
  /// work remains for this cutset (and the global search may continue).
  void start(const Cutset& cutset, const Universe& initial);
  [[nodiscard]] bool step(std::uint64_t schedule_budget);

  /// True once every schedule of the current cutset has been explored.
  [[nodiscard]] bool exhausted() const { return stack_.empty(); }
  /// True when the whole search must stop (limits / policy).
  [[nodiscard]] bool stopped() const { return stop_; }

 private:
  /// One search node: a state plus the iteration position over its
  /// successor candidates.
  struct Frame {
    Universe state;
    ActionId via;  ///< action whose execution produced this node (invalid
                   ///< at the root)
    std::vector<ActionId> candidates;
    std::size_t next = 0;
    Bitset tried;
    std::size_t skips = 0;  ///< skip-mode drops charged to this node
    bool explored_child = false;
    bool recompute = false;  ///< a skip invalidated `candidates`
    std::vector<std::pair<ActionId, ActionId>> extra_deps;
  };

  /// Pushes the node reached via `via` with state `state`; returns false if
  /// the application pruned the prefix.
  bool push_node(Universe state, ActionId via);
  void pop_node();
  void fill_candidates(Frame& frame);
  void record_outcome(const Universe& state);
  /// A blank frame, reusing storage recycled by `pop_node` when available
  /// (steady-state search then does no per-node heap allocation beyond what
  /// the universe copy itself needs).
  [[nodiscard]] Frame acquire_frame();
  /// Folds the thread-local universe clone counters accrued since the last
  /// flush into `stats_`.
  void flush_clone_counters();
  [[nodiscard]] ActionId last_scheduled() const {
    return prefix_.empty() ? ActionId() : prefix_.back();
  }

  /// §6 failure memoization: the causal key of running `action` now — a
  /// hash of the action and the ordered prefix actions sharing a target
  /// with it (which fully determine its targets' state).
  [[nodiscard]] std::uint64_t causal_key(ActionId action) const;

  const std::vector<ActionRecord>& records_;
  const Relations& relations_;
  const ReconcilerOptions& options_;
  Policy& policy_;
  Selection& selection_;
  SearchStats& stats_;
  const Stopwatch& clock_;
  Deadline deadline_;
  std::vector<ImprovementEvent>* improvements_ = nullptr;

  std::optional<CandidateScheduler> scheduler_;  // created per start()
  std::optional<Rng> strict_rng_;

  Bitset done_;                        // scheduled ∪ skipped ∪ excluded
  std::vector<ActionId> prefix_;       // executed actions, in order
  std::vector<ActionId> skipped_;      // dropped actions (skip mode)
  std::vector<ActionId> cut_actions_;  // the active cutset
  std::vector<Frame> stack_;
  std::vector<Frame> spare_frames_;  // recycled frame storage (free-list)
  bool stop_ = false;

  // Baseline for flush_clone_counters (thread-local counters are monotonic;
  // the simulator accounts the delta it caused).
  Universe::CloneCounters clone_mark_;

  // Failure memoization (ReconcilerOptions::memoize_failures).
  const std::vector<Bitset>* overlap_;  // per action: actions sharing a target
  std::vector<Bitset> owned_overlap_;   // backing store when none was shared
  std::unordered_map<std::uint64_t, FailureKind> known_failures_;
};

}  // namespace icecube
