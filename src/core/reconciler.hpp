// Top-level reconciliation (§2.1): scheduling → simulation → selection.
//
// This is the public entry point of the library. Feed it the common initial
// state and one log per replica; it builds the static constraint relation,
// analyses dependence cycles, searches schedules per proper cutset under the
// configured heuristic, and returns the ranked outcomes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/relations.hpp"
#include "core/universe.hpp"
#include "solver/graph.hpp"
#include "util/thread_pool.hpp"

namespace icecube {

/// Everything a caller learns from one reconciliation run.
struct ReconcileResult {
  /// Retained outcomes, best first (per the policy cost function). Empty
  /// only if the action set is empty... in which case it holds the trivial
  /// empty schedule, so in practice never empty unless limits were 0.
  std::vector<Outcome> outcomes;
  SearchStats stats;
  /// The proper cutsets that were searched (usually just the empty one).
  std::vector<Cutset> cutsets;
  /// True iff the search exhausted its limits with no complete schedule and
  /// the greedy fallback ran (ReconcilerOptions::degrade_on_exhaustion).
  /// The fallback's own outcome carries `Outcome::degraded`.
  bool degraded = false;
  /// Actions the degraded fallback could not place anywhere (empty unless
  /// `degraded`). These are what graceful degradation dropped.
  std::vector<ActionId> degraded_dropped;

  [[nodiscard]] const Outcome& best() const { return outcomes.front(); }
  [[nodiscard]] bool found_any() const { return !outcomes.empty(); }
};

/// One-problem reconciler. Construct with the initial universe and the
/// divergent logs, optionally attach a policy, then `run()`.
///
/// ```
/// Reconciler r(initial, {log_a, log_b}, options);
/// ReconcileResult result = r.run();
/// const Universe& merged = result.best().final_state;
/// ```
class Reconciler {
 public:
  /// `policy` may be null (neutral defaults are used). The policy must
  /// outlive the reconciler.
  Reconciler(Universe initial, std::vector<Log> logs,
             ReconcilerOptions options = {}, Policy* policy = nullptr);

  /// Runs all three stages and returns the ranked outcomes. Repeatable;
  /// each call searches from scratch.
  [[nodiscard]] ReconcileResult run();

  /// Introspection for tests, benches and demos — valid after construction.
  /// `constraints()`/`relations()` are populated on the dense path only
  /// (backend dfs, or auto within `dense_graph_limit`); the greedy and
  /// local-search backends build `solver_graph()` instead and leave the
  /// dense structures empty.
  [[nodiscard]] const std::vector<ActionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const ConstraintMatrix& constraints() const { return matrix_; }
  [[nodiscard]] const Relations& relations() const { return relations_; }
  [[nodiscard]] const SolverGraph& solver_graph() const { return graph_; }
  /// The backend the options resolved to (auto on an oversized problem
  /// degenerates to local search).
  [[nodiscard]] SolverKind resolved_backend() const {
    return resolved_backend_;
  }
  [[nodiscard]] const Universe& initial_state() const { return initial_; }
  /// Work counters of the (sparse) constraint construction.
  [[nodiscard]] const ConstraintBuildStats& build_stats() const {
    return build_stats_;
  }

  /// Formats a schedule as "log:pos op(...)" lines for demos.
  [[nodiscard]] std::string describe_schedule(
      const std::vector<ActionId>& schedule) const;

 private:
  Universe initial_;
  std::vector<Log> logs_;
  ReconcilerOptions options_;
  Policy* policy_;
  std::unique_ptr<Policy> default_policy_;

  std::vector<ActionRecord> records_;
  ConstraintMatrix matrix_;
  ConstraintBuildStats build_stats_;
  Relations relations_;
  /// Sparse adjacency graph (greedy/local-search path only).
  SolverGraph graph_;
  SolverKind resolved_backend_ = SolverKind::kDfs;
  bool sparse_ = false;
  /// Shared target→actions overlap index for the §6 causal keys, built once
  /// here and handed to every cutset's simulator (empty when failure
  /// memoization is off).
  std::vector<Bitset> target_overlap_;
  /// Worker pool behind ReconcilerOptions::threads — created once (threads
  /// != 1), shared by the constraint build and every run(). Null means
  /// fully sequential.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace icecube
