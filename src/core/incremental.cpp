#include "core/incremental.hpp"

namespace icecube {

IncrementalReconciler::IncrementalReconciler(Universe initial,
                                             std::vector<Log> logs,
                                             ReconcilerOptions options,
                                             Policy* policy)
    : initial_(std::move(initial)),
      logs_(std::move(logs)),
      options_(options),
      policy_(policy),
      selection_(*(policy != nullptr
                       ? policy
                       : (default_policy_ = std::make_unique<Policy>()).get()),
                 options.keep_outcomes) {
  if (policy_ == nullptr) policy_ = default_policy_.get();
  initial_.set_copy_mode(options_.eager_state_copies
                             ? Universe::CopyMode::kEager
                             : Universe::CopyMode::kCopyOnWrite);
  deadline_ = Deadline::after_seconds(options_.limits.max_seconds);
  records_ = flatten(logs_);
  matrix_ = build_constraints(initial_, records_);
  relations_ = Relations::from_constraints(matrix_);
  if (options_.memoize_failures) {
    target_overlap_ = build_target_overlap(records_);
  }

  CutsetAnalysis cuts =
      find_proper_cutsets(relations_, options_.max_cycles, options_.max_cutsets);
  stats_.cutsets_truncated = cuts.truncated;
  policy_->select_cutsets(cuts.cutsets);
  stats_.cutset_count = cuts.cutsets.size();
  cutsets_ = std::move(cuts.cutsets);

  if (!open_next_cutset()) done_ = true;
}

IncrementalReconciler::~IncrementalReconciler() = default;

bool IncrementalReconciler::open_next_cutset() {
  while (next_cutset_ < cutsets_.size()) {
    const Cutset& cutset = cutsets_[next_cutset_++];
    if (cutset.empty()) {
      working_ = relations_;
    } else {
      Bitset removed(records_.size());
      for (ActionId a : cutset.actions) removed.set(a.index());
      working_ = relations_.restricted(removed);
    }
    simulator_.emplace(records_, working_, options_, *policy_, selection_,
                       stats_, clock_, deadline_,
                       options_.memoize_failures ? &target_overlap_ : nullptr);
    simulator_->start(cutset, initial_);
    return true;
  }
  return false;
}

IncrementalReconciler::Progress IncrementalReconciler::step(
    std::uint64_t schedule_budget) {
  while (!done_ && schedule_budget > 0) {
    const std::uint64_t before = stats_.schedules_explored();
    const bool more = simulator_->step(schedule_budget);
    const std::uint64_t used = stats_.schedules_explored() - before;
    schedule_budget -= std::min(schedule_budget, used);
    if (simulator_->stopped()) {
      done_ = true;  // a limit or the policy halted the whole search
    } else if (!more) {
      if (!open_next_cutset()) done_ = true;  // cutset exhausted; next one
    }
  }
  stats_.elapsed_seconds = clock_.seconds();
  return progress();
}

bool IncrementalReconciler::finished() const { return done_; }

IncrementalReconciler::Progress IncrementalReconciler::progress() const {
  Progress p;
  p.schedules_explored = stats_.schedules_explored();
  p.finished = done_;
  p.has_best = !selection_.empty();
  p.best_cost = selection_.best_cost();
  p.cutsets_remaining = cutsets_.size() - next_cutset_;
  return p;
}

ReconcileResult IncrementalReconciler::take_result() {
  done_ = true;
  simulator_.reset();
  stats_.elapsed_seconds = clock_.seconds();
  ReconcileResult result;
  result.stats = stats_;
  result.cutsets = cutsets_;
  result.outcomes = selection_.take();
  return result;
}

}  // namespace icecube
