#include "core/incremental.hpp"

#include <algorithm>
#include <cassert>

namespace icecube {

IncrementalConstraintGraph::IncrementalConstraintGraph(
    const Universe& universe)
    : universe_(&universe), by_target_(universe.size()) {}

std::uint32_t IncrementalConstraintGraph::find(std::uint32_t v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

void IncrementalConstraintGraph::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return;
  // Splice the smaller member chain onto the larger — O(1), no copies.
  if (comp_size_[a] < comp_size_[b]) std::swap(a, b);
  member_next_[member_tail_[a]] = member_head_[b];
  member_tail_[a] = member_tail_[b];
  comp_size_[a] += comp_size_[b];
  parent_[b] = a;
  --components_;
}

ActionId IncrementalConstraintGraph::add_action(ActionPtr action, LogId log,
                                                std::size_t position) {
  const std::uint32_t id = static_cast<std::uint32_t>(records_.size());
  records_.push_back(ActionRecord{std::move(action), log, position});
  const ActionRecord& rb = records_.back();

  graph_.n = records_.size();
  graph_.preds.emplace_back();
  graph_.succs.emplace_back();
  graph_.overlap_lists.emplace_back();
  parent_.push_back(id);
  member_head_.push_back(id);
  member_tail_.push_back(id);
  member_next_.push_back(kNoMember);
  comp_size_.push_back(1);
  paired_stamp_.push_back(0);
  pair_slot_.push_back(0);
  ++components_;

  // Phase 1: probe the inverted index. Every known action sharing a target
  // is one unordered pair (stamp-deduplicated across targets), and the
  // pair's shared-target set falls out of the probe itself: the second and
  // later shared objects land on the pair's pool slot instead of forcing a
  // per-direction quadratic re-scan of both target lists. The new action's
  // target list — a virtual call returning a fresh vector — is extracted
  // exactly once per arrival.
  pair_others_.clear();
  const std::vector<ObjectId> targets = rb.action->targets();
  for (ObjectId t : targets) {
    assert(t.index() < by_target_.size() &&
           "action targets an object unknown to the universe");
    for (ActionId other : by_target_[t.index()]) {
      if (paired_stamp_[other.index()] == id + 1) {
        pair_targets_pool_[pair_slot_[other.index()]].push_back(t);
        continue;
      }
      paired_stamp_[other.index()] = id + 1;
      const auto slot = static_cast<std::uint32_t>(pair_others_.size());
      if (slot == pair_targets_pool_.size()) pair_targets_pool_.emplace_back();
      pair_slot_[other.index()] = slot;
      pair_targets_pool_[slot].clear();
      pair_targets_pool_[slot].push_back(t);
      pair_others_.push_back(other);
    }
    by_target_[t.index()].push_back(ActionId(id));
  }

  // Phase 2: evaluate each pair over its precomputed shared set, with
  // exactly the batch builder's direction rules — a same-log pair is safe
  // in its recorded direction, so only log-reversing directions run.
  for (std::size_t k = 0; k < pair_others_.size(); ++k) {
    const ActionId other = pair_others_[k];
    const std::vector<ObjectId>& shared = pair_targets_pool_[k];
    const ActionRecord& ra = records_[other.index()];
    // `other` < `id`, matching the builder's (lo, hi) pair orientation.
    graph_.overlap_lists[other.index()].push_back(ActionId(id));
    graph_.overlap_lists[id].push_back(other);
    const bool a_first = ra.before_in_log(rb);
    const bool b_first = rb.before_in_log(ra);
    if (!a_first) {
      ++stats_.pairs_evaluated;
      if (evaluate_constraint_over(*universe_, ra, rb, shared,
                                   stats_.order_calls) ==
          Constraint::kUnsafe) {
        graph_.succs[id].push_back(other);
        graph_.preds[other.index()].push_back(ActionId(id));
      }
    }
    if (!b_first) {
      ++stats_.pairs_evaluated;
      if (evaluate_constraint_over(*universe_, rb, ra, shared,
                                   stats_.order_calls) ==
          Constraint::kUnsafe) {
        graph_.succs[other.index()].push_back(ActionId(id));
        graph_.preds[id].push_back(other);
      }
    }
    ++stats_.target_set_builds;
    unite(id, other.value());
  }

  // Existing actions' lists stay sorted (the new id is their maximum); the
  // new action's lists collected targets in group order, so sort them.
  std::sort(graph_.preds[id].begin(), graph_.preds[id].end());
  std::sort(graph_.succs[id].begin(), graph_.succs[id].end());
  std::sort(graph_.overlap_lists[id].begin(),
            graph_.overlap_lists[id].end());

  dirty_roots_.push_back(find(id));
  return ActionId(id);
}

ActionId IncrementalConstraintGraph::component_root(ActionId id) {
  return ActionId(find(id.value()));
}

const std::vector<ActionId>& IncrementalConstraintGraph::component_members(
    ActionId root) {
  assert(find(root.value()) == root.value() && "not a current root");
  members_scratch_.clear();
  members_scratch_.reserve(comp_size_[root.index()]);
  for (std::uint32_t v = member_head_[root.index()]; v != kNoMember;
       v = member_next_[v]) {
    members_scratch_.push_back(ActionId(v));
  }
  return members_scratch_;
}

std::vector<ActionId> IncrementalConstraintGraph::take_dirty_roots() {
  std::vector<ActionId> roots;
  roots.reserve(dirty_roots_.size());
  for (std::uint32_t raw : dirty_roots_) {
    roots.push_back(ActionId(find(raw)));
  }
  dirty_roots_.clear();
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

IncrementalReconciler::IncrementalReconciler(Universe initial,
                                             std::vector<Log> logs,
                                             ReconcilerOptions options,
                                             Policy* policy)
    : initial_(std::move(initial)),
      logs_(std::move(logs)),
      options_(options),
      policy_(policy),
      selection_(*(policy != nullptr
                       ? policy
                       : (default_policy_ = std::make_unique<Policy>()).get()),
                 options.keep_outcomes) {
  if (policy_ == nullptr) policy_ = default_policy_.get();
  initial_.set_copy_mode(options_.eager_state_copies
                             ? Universe::CopyMode::kEager
                             : Universe::CopyMode::kCopyOnWrite);
  deadline_ = Deadline::after_seconds(options_.limits.max_seconds);
  records_ = flatten(logs_);
  matrix_ = build_constraints(initial_, records_);
  relations_ = Relations::from_constraints(matrix_);
  if (options_.memoize_failures) {
    target_overlap_ = build_target_overlap(records_);
  }

  CutsetAnalysis cuts =
      find_proper_cutsets(relations_, options_.max_cycles, options_.max_cutsets);
  stats_.cutsets_truncated = cuts.truncated;
  policy_->select_cutsets(cuts.cutsets);
  stats_.cutset_count = cuts.cutsets.size();
  cutsets_ = std::move(cuts.cutsets);

  if (!open_next_cutset()) done_ = true;
}

IncrementalReconciler::~IncrementalReconciler() = default;

bool IncrementalReconciler::open_next_cutset() {
  while (next_cutset_ < cutsets_.size()) {
    const Cutset& cutset = cutsets_[next_cutset_++];
    if (cutset.empty()) {
      working_ = relations_;
    } else {
      Bitset removed(records_.size());
      for (ActionId a : cutset.actions) removed.set(a.index());
      working_ = relations_.restricted(removed);
    }
    simulator_.emplace(records_, working_, options_, *policy_, selection_,
                       stats_, clock_, deadline_,
                       options_.memoize_failures ? &target_overlap_ : nullptr);
    simulator_->start(cutset, initial_);
    return true;
  }
  return false;
}

IncrementalReconciler::Progress IncrementalReconciler::step(
    std::uint64_t schedule_budget) {
  while (!done_ && schedule_budget > 0) {
    const std::uint64_t before = stats_.schedules_explored();
    const bool more = simulator_->step(schedule_budget);
    const std::uint64_t used = stats_.schedules_explored() - before;
    schedule_budget -= std::min(schedule_budget, used);
    if (simulator_->stopped()) {
      done_ = true;  // a limit or the policy halted the whole search
    } else if (!more) {
      if (!open_next_cutset()) done_ = true;  // cutset exhausted; next one
    }
  }
  stats_.elapsed_seconds = clock_.seconds();
  return progress();
}

bool IncrementalReconciler::finished() const { return done_; }

IncrementalReconciler::Progress IncrementalReconciler::progress() const {
  Progress p;
  p.schedules_explored = stats_.schedules_explored();
  p.finished = done_;
  p.has_best = !selection_.empty();
  p.best_cost = selection_.best_cost();
  p.cutsets_remaining = cutsets_.size() - next_cutset_;
  return p;
}

ReconcileResult IncrementalReconciler::take_result() {
  done_ = true;
  simulator_.reset();
  stats_.elapsed_seconds = clock_.seconds();
  ReconcileResult result;
  result.stats = stats_;
  result.cutsets = cutsets_;
  result.outcomes = selection_.take();
  return result;
}

}  // namespace icecube
