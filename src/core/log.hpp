// Action logs (§2.1).
//
// A log is the ordered record of one replica's isolated execution. It is
// tentative but *correct*: it was successfully performed against the local
// universe and reflects the user's intent. Within a log the recorded order
// is `safe` by default; the engine may still discover that some of it can be
// relaxed (via the same-log order method).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "util/ids.hpp"

namespace icecube {

/// An ordered sequence of actions recorded at one site.
class Log {
 public:
  Log() = default;
  explicit Log(std::string name) : name_(std::move(name)) {}

  void append(ActionPtr action) {
    assert(action != nullptr);
    actions_.push_back(std::move(action));
  }

  [[nodiscard]] std::size_t size() const { return actions_.size(); }
  [[nodiscard]] bool empty() const { return actions_.empty(); }

  [[nodiscard]] const Action& at(std::size_t i) const {
    assert(i < actions_.size());
    return *actions_[i];
  }
  [[nodiscard]] const ActionPtr& ptr(std::size_t i) const {
    assert(i < actions_.size());
    return actions_[i];
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] auto begin() const { return actions_.begin(); }
  [[nodiscard]] auto end() const { return actions_.end(); }

 private:
  std::string name_;
  std::vector<ActionPtr> actions_;
};

/// Provenance of an action inside a reconciliation problem: which log it came
/// from and at which position. The engine flattens all input logs into a
/// dense `ActionId` space and keeps this record per action.
struct ActionRecord {
  ActionPtr action;
  LogId log;
  std::size_t position = 0;  // index within the originating log

  [[nodiscard]] bool same_log(const ActionRecord& other) const {
    return log == other.log;
  }
  /// True iff this action appears before `other` within the same log.
  [[nodiscard]] bool before_in_log(const ActionRecord& other) const {
    return log == other.log && position < other.position;
  }
};

/// Flattens `logs` into one vector of records; ids are assigned log by log,
/// preserving in-log order (so `ActionId` order within one log equals log
/// order — handy for tests, never relied upon by the engine).
[[nodiscard]] inline std::vector<ActionRecord> flatten(
    const std::vector<Log>& logs) {
  std::vector<ActionRecord> records;
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  records.reserve(total);
  for (std::size_t li = 0; li < logs.size(); ++li) {
    for (std::size_t pos = 0; pos < logs[li].size(); ++pos) {
      records.push_back(ActionRecord{logs[li].ptr(pos), LogId(li), pos});
    }
  }
  return records;
}

}  // namespace icecube
