// The three-valued static constraint relation of IceCube (§2.3).
#pragma once

#include <cstdint>
#include <string_view>

namespace icecube {

/// Value of the static constraint `constraint(a, b)`: may action `a` be
/// ordered before action `b` in a reconciled schedule?
///
///  - `kSafe`:   allowed, and known (or highly likely) not to cause a
///               dynamic failure when `b` immediately follows `a`.
///  - `kMaybe`:  possible, modulo dynamic conflicts found in simulation.
///  - `kUnsafe`: disallowed; any schedule containing both must put `b`
///               before `a`.
enum class Constraint : std::uint8_t { kSafe = 0, kMaybe = 1, kUnsafe = 2 };

/// Returns the more constraining of two values (unsafe > maybe > safe).
/// Used when an action pair shares several target objects (§2.4: "the system
/// calls each of their order in turn and returns the most constraining
/// value").
[[nodiscard]] constexpr Constraint most_constraining(Constraint a,
                                                     Constraint b) {
  return a >= b ? a : b;
}

[[nodiscard]] constexpr std::string_view to_string(Constraint c) {
  switch (c) {
    case Constraint::kSafe:
      return "safe";
    case Constraint::kMaybe:
      return "maybe";
    case Constraint::kUnsafe:
      return "unsafe";
  }
  return "?";
}

}  // namespace icecube
