// Application policy hooks (§3.5).
//
// IceCube stays generic by letting the application steer reconciliation:
// choose among cutsets, control exploration order, prune unpromising
// prefixes, inject prefix-conditional dependencies, analyse failures, and
// rank complete outcomes with an application-specific cost function.
#pragma once

#include <utility>
#include <vector>

#include "core/outcome.hpp"
#include "core/cutset.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Read-only view of the search position handed to policy hooks.
struct PrefixView {
  /// Actions executed so far, in order. Empty at the root.
  const std::vector<ActionId>& actions;
  /// Actions dropped so far (FailureMode::kSkipAction only).
  const std::vector<ActionId>& skipped;
};

/// Application hook interface. All hooks have neutral defaults, so policies
/// override only what they need. Hooks must not retain references into the
/// arguments beyond the call.
class Policy {
 public:
  Policy() = default;
  Policy(const Policy&) = default;
  Policy& operator=(const Policy&) = default;
  Policy(Policy&&) = default;
  Policy& operator=(Policy&&) = default;
  virtual ~Policy() = default;

  /// Accept/reorder/trim the proper cutsets before searching. Called once.
  /// Default: keep all, smallest first (as produced by the analysis).
  virtual void select_cutsets(std::vector<Cutset>& cutsets) { (void)cutsets; }

  /// Reorder (or trim) the successor candidates of `prefix`; the scheduler
  /// explores them left to right. Default: engine order (ascending id).
  virtual void order_candidates(const PrefixView& prefix,
                                std::vector<ActionId>& candidates) {
    (void)prefix;
    (void)candidates;
  }

  /// Return false to abandon `prefix` (and everything below it) based on the
  /// intermediate state.
  virtual bool keep_prefix(const PrefixView& prefix, const Universe& state) {
    (void)prefix;
    (void)state;
    return true;
  }

  /// Inject extra dependencies conditional on the current prefix: append
  /// pairs (a, b) meaning "a must precede b below this prefix".
  virtual void extra_dependencies(
      const PrefixView& prefix,
      std::vector<std::pair<ActionId, ActionId>>& out) {
    (void)prefix;
    (void)out;
  }

  /// Notification that `failed` could not be simulated after `prefix`.
  /// `state` is the universe in which the failure occurred.
  virtual void on_failure(const PrefixView& prefix, const Universe& state,
                          ActionId failed, FailureKind kind) {
    (void)prefix;
    (void)state;
    (void)failed;
    (void)kind;
  }

  /// Called for every recorded outcome (complete schedules always; dead-end
  /// prefixes when `record_partial_outcomes` is set). Return false to stop
  /// the entire search — e.g. once an application-optimal result is in hand.
  virtual bool on_outcome(const Outcome& outcome) {
    (void)outcome;
    return true;
  }

  /// Cost of an outcome; lower is better. The default prefers more executed
  /// actions, then fewer skips.
  virtual double cost(const Outcome& outcome) {
    return -static_cast<double>(outcome.schedule.size()) +
           0.25 * static_cast<double>(outcome.skipped.size());
  }
};

}  // namespace icecube
