// Budget-exhaustion fallback: anytime degradation to greedy insertion.
//
// The paper caps runs at 100,000 simulations; a capped search can exhaust
// its budget with nothing but dead-end prefixes in hand. Following the
// anytime-reconciliation reading of CLP-vs-local-search comparisons, the
// engine then degrades to the cheap baseline rather than returning nothing:
// a greedy insertion pass (the §5 Phatak & Badrinath shape, mirrored from
// src/baseline/greedy_insertion, re-implemented here because core cannot
// link against baseline) builds a best-effort schedule over the surviving
// action set. The result is a *valid* schedule — it replays from the
// initial state — but carries no optimality claim and is marked
// `Outcome::degraded`.
#pragma once

#include "core/log.hpp"
#include "core/outcome.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Builds a best-effort outcome by greedy insertion: actions are taken in
/// flatten order and inserted at the first position (respecting their log's
/// internal order) where the whole schedule still replays; actions with no
/// working position are reported in `skipped`. The returned outcome has
/// `degraded = true`, `complete = false`, and a replayed `final_state`.
[[nodiscard]] Outcome greedy_degraded_outcome(
    const Universe& initial, const std::vector<ActionRecord>& records);

}  // namespace icecube
