// Conflict explanation (§3.5).
//
// The paper insists failures be analysable: "If a precondition or execution
// failure occurs, the application is provided with the prefix and state
// causing the failure. The application may analyse the state and derive
// additional information about the causes of the failure."
//
// This module turns an outcome into a human-readable account of every
// action that did NOT make it into the schedule:
//   - cutset exclusions name the static conflict partners (the unsafe-pair
//     cycle members from the constraint matrix);
//   - dropped actions name the dynamic failure kind and the schedule
//     position where they gave up (collected by attaching the reporter as
//     the reconciliation policy, or wrapping an existing one).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/reconciler.hpp"

namespace icecube {

/// Policy decorator that records dynamic-failure details while delegating
/// every hook to an inner policy (or to neutral defaults).
class ConflictReporter : public Policy {
 public:
  /// `inner` may be null; it must outlive the reporter.
  explicit ConflictReporter(Policy* inner = nullptr) : inner_(inner) {}

  struct FailureNote {
    FailureKind kind;
    std::size_t prefix_length;  ///< executed actions when it failed
    std::size_t occurrences;    ///< times this action failed anywhere
  };

  [[nodiscard]] const std::map<ActionId, FailureNote>& failures() const {
    return failures_;
  }

  // Delegating hooks.
  void select_cutsets(std::vector<Cutset>& cutsets) override {
    if (inner_ != nullptr) inner_->select_cutsets(cutsets);
  }
  void order_candidates(const PrefixView& prefix,
                        std::vector<ActionId>& candidates) override {
    if (inner_ != nullptr) inner_->order_candidates(prefix, candidates);
  }
  bool keep_prefix(const PrefixView& prefix, const Universe& state) override {
    return inner_ == nullptr || inner_->keep_prefix(prefix, state);
  }
  void extra_dependencies(
      const PrefixView& prefix,
      std::vector<std::pair<ActionId, ActionId>>& out) override {
    if (inner_ != nullptr) inner_->extra_dependencies(prefix, out);
  }
  bool on_outcome(const Outcome& outcome) override {
    return inner_ == nullptr || inner_->on_outcome(outcome);
  }
  double cost(const Outcome& outcome) override {
    return inner_ != nullptr ? inner_->cost(outcome)
                             : Policy::cost(outcome);
  }

  void on_failure(const PrefixView& prefix, const Universe& state,
                  ActionId failed, FailureKind kind) override {
    auto [it, inserted] = failures_.try_emplace(
        failed, FailureNote{kind, prefix.actions.size(), 0});
    ++it->second.occurrences;
    // Keep the earliest (shortest-prefix) failure as the representative.
    if (!inserted && prefix.actions.size() < it->second.prefix_length) {
      it->second.prefix_length = prefix.actions.size();
      it->second.kind = kind;
    }
    if (inner_ != nullptr) inner_->on_failure(prefix, state, failed, kind);
  }

 private:
  Policy* inner_;
  std::map<ActionId, FailureNote> failures_;
};

/// Renders an explanation of `outcome`'s exclusions. `reconciler` supplies
/// provenance and the constraint matrix; `reporter` (optional) supplies
/// dynamic-failure notes for dropped actions.
[[nodiscard]] std::string explain_conflicts(
    const Reconciler& reconciler, const Outcome& outcome,
    const ConflictReporter* reporter = nullptr);

}  // namespace icecube
