// Reusable application policies built on the §3.5 hooks.
//
// These are the worked examples of the hook system: a branch-and-bound
// policy that prunes unpromising prefixes (the paper's "abort the
// simulation of a prefix that is deemed not sufficiently promising", and a
// first step toward the constraint-programming optimisation §6 cites), and
// a priority policy that protects chosen actions from cutset exclusion
// ("prioritise an action by not allowing it to be excluded from the
// reconciled log").
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/cutset.hpp"
#include "core/policy.hpp"

namespace icecube {

/// Branch-and-bound on the number of executed actions. A prefix is pruned
/// when even executing every remaining action could not beat the incumbent
/// best schedule length — sound because `schedule-length` is monotone along
/// a branch and bounded by |prefix| + |remaining|.
///
/// Construct with the total action count (cutset exclusions are accounted
/// for per-outcome automatically via the prefix view).
class MaxActionsPolicy : public Policy {
 public:
  explicit MaxActionsPolicy(std::size_t total_actions)
      : total_(total_actions) {}

  bool keep_prefix(const PrefixView& prefix, const Universe&) override {
    // Upper bound: everything not yet executed or dropped could still run.
    const std::size_t upper =
        total_ - std::min(total_, prefix.skipped.size());
    return static_cast<std::ptrdiff_t>(upper) >
           static_cast<std::ptrdiff_t>(incumbent_);
    // (strictly greater: equalling the incumbent cannot improve it)
  }

  bool on_outcome(const Outcome& outcome) override {
    incumbent_ = std::max(incumbent_, outcome.schedule.size());
    return true;
  }

  double cost(const Outcome& outcome) override {
    return -static_cast<double>(outcome.schedule.size());
  }

  [[nodiscard]] std::size_t incumbent() const { return incumbent_; }

 private:
  std::size_t total_;
  std::size_t incumbent_ = 0;
};

/// Protects a set of actions from cutset exclusion: every proper cutset
/// containing a protected action is rejected. If no cutset survives, the
/// conflict is unresolvable under the protection and the search runs with
/// no cutsets (finding nothing) — callers should check `rejected_all()`.
class ProtectActionsPolicy : public Policy {
 public:
  explicit ProtectActionsPolicy(std::vector<ActionId> protected_actions)
      : protected_(std::move(protected_actions)) {}

  void select_cutsets(std::vector<Cutset>& cutsets) override {
    std::erase_if(cutsets, [this](const Cutset& cs) {
      for (ActionId a : cs.actions) {
        if (std::find(protected_.begin(), protected_.end(), a) !=
            protected_.end()) {
          return true;
        }
      }
      return false;
    });
    rejected_all_ = cutsets.empty();
  }

  [[nodiscard]] bool rejected_all() const { return rejected_all_; }

 private:
  std::vector<ActionId> protected_;
  bool rejected_all_ = false;
};

/// Atomic groups ("parcels"): within each declared group, either every
/// action executes or none does. This is the all-or-nothing user intent the
/// follow-up IceCube systems made a first-class constraint; here it is
/// expressed with the 2001 hooks alone:
///  - prefixes that have executed part of a group and dropped another part
///    are pruned where further search could still find a clean outcome;
///  - outcomes that split a group are costed at +infinity, so any
///    parcel-respecting outcome outranks them.
///
/// Limit of the hook vocabulary (deliberate — the 2001 paper has no
/// all-or-nothing constraint): the engine only drops actions that *fail*,
/// so when a parcel member can never execute, no outcome dropping its
/// healthy peers exists to be selected. Callers must therefore check
/// `satisfied(best)` and compensate (e.g. re-run with the parcel's actions
/// removed) when it reports false.
class ParcelPolicy : public Policy {
 public:
  explicit ParcelPolicy(std::vector<std::vector<ActionId>> parcels)
      : parcels_(std::move(parcels)) {}

  bool keep_prefix(const PrefixView& prefix, const Universe&) override {
    if (prefix.skipped.empty()) return true;
    for (const auto& parcel : parcels_) {
      bool executed = false, dropped = false;
      for (ActionId a : parcel) {
        executed = executed || contains(prefix.actions, a);
        dropped = dropped || contains(prefix.skipped, a);
      }
      if (executed && dropped) return false;
    }
    return true;
  }

  double cost(const Outcome& outcome) override {
    for (const auto& parcel : parcels_) {
      bool executed = false, missing = false;
      for (ActionId a : parcel) {
        (contains(outcome.schedule, a) ? executed : missing) = true;
      }
      if (executed && missing) {
        return std::numeric_limits<double>::infinity();
      }
    }
    return Policy::cost(outcome);
  }

  /// True iff `outcome` keeps every parcel atomic.
  [[nodiscard]] bool satisfied(const Outcome& outcome) const {
    for (const auto& parcel : parcels_) {
      bool executed = false, missing = false;
      for (ActionId a : parcel) {
        (contains(outcome.schedule, a) ? executed : missing) = true;
      }
      if (executed && missing) return false;
    }
    return true;
  }

 private:
  static bool contains(const std::vector<ActionId>& v, ActionId a) {
    return std::find(v.begin(), v.end(), a) != v.end();
  }
  std::vector<std::vector<ActionId>> parcels_;
};

/// Records the search's decision points as human-readable lines — failures,
/// prunes, outcomes — bounded to the most recent `capacity` events. Wrap it
/// around experiments to understand why a schedule was (not) found.
class TracePolicy : public Policy {
 public:
  explicit TracePolicy(std::size_t capacity = 1024) : capacity_(capacity) {}

  void on_failure(const PrefixView& prefix, const Universe&, ActionId failed,
                  FailureKind kind) override {
    std::ostringstream os;
    os << "depth " << prefix.actions.size() << ": action " << failed.value()
       << (kind == FailureKind::kPrecondition ? " precondition" : " execution")
       << " failed";
    push(os.str());
  }

  bool on_outcome(const Outcome& outcome) override {
    std::ostringstream os;
    os << (outcome.complete ? "complete" : "dead-end") << " outcome: "
       << outcome.schedule.size() << " executed, " << outcome.skipped.size()
       << " dropped";
    push(os.str());
    return true;
  }

  [[nodiscard]] const std::vector<std::string>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t dropped_events() const { return dropped_; }

  [[nodiscard]] std::string dump() const {
    std::string out;
    for (const auto& line : events_) {
      out += line;
      out += '\n';
    }
    return out;
  }

 private:
  void push(std::string line) {
    if (events_.size() >= capacity_) {
      events_.erase(events_.begin());
      ++dropped_;
    }
    events_.push_back(std::move(line));
  }

  std::size_t capacity_;
  std::size_t dropped_ = 0;
  std::vector<std::string> events_;
};

}  // namespace icecube
