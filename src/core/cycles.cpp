#include "core/cycles.hpp"

#include <algorithm>
#include <cassert>

namespace icecube {

namespace {

/// Iterative Tarjan SCC. Kept iterative so pathological graphs cannot blow
/// the call stack.
class TarjanScc {
 public:
  explicit TarjanScc(const Relations& rel) : rel_(rel), n_(rel.size()) {
    index_.assign(n_, kUnvisited);
    lowlink_.assign(n_, 0);
    on_stack_.assign(n_, false);
  }

  std::vector<std::vector<ActionId>> run() {
    for (std::size_t v = 0; v < n_; ++v) {
      if (index_[v] == kUnvisited) visit(v);
    }
    return std::move(components_);
  }

 private:
  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  struct Frame {
    std::size_t vertex;
    std::vector<std::size_t> successors;
    std::size_t next = 0;
  };

  void visit(std::size_t root) {
    std::vector<Frame> frames;
    push_vertex(root, frames);

    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.successors.size()) {
        const std::size_t w = f.successors[f.next++];
        if (index_[w] == kUnvisited) {
          push_vertex(w, frames);
        } else if (on_stack_[w]) {
          lowlink_[f.vertex] = std::min(lowlink_[f.vertex], index_[w]);
        }
      } else {
        if (lowlink_[f.vertex] == index_[f.vertex]) {
          std::vector<ActionId> component;
          std::size_t w;
          do {
            w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = false;
            component.push_back(ActionId(w));
          } while (w != f.vertex);
          components_.push_back(std::move(component));
        }
        const std::size_t v = f.vertex;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink_[frames.back().vertex] =
              std::min(lowlink_[frames.back().vertex], lowlink_[v]);
        }
      }
    }
  }

  void push_vertex(std::size_t v, std::vector<Frame>& frames) {
    index_[v] = lowlink_[v] = counter_++;
    stack_.push_back(v);
    on_stack_[v] = true;
    std::vector<std::size_t> succ;
    rel_.raw_successors(ActionId(v)).for_each([&succ, v](std::size_t w) {
      if (w != v) succ.push_back(w);
    });
    frames.push_back(Frame{v, std::move(succ), 0});
  }

  const Relations& rel_;
  std::size_t n_;
  std::size_t counter_ = 0;
  std::vector<std::size_t> index_, lowlink_, stack_;
  std::vector<bool> on_stack_;
  std::vector<std::vector<ActionId>> components_;
};

/// Johnson's elementary-circuit search within one SCC, with a result cap.
class JohnsonCycles {
 public:
  JohnsonCycles(const Relations& rel, const std::vector<ActionId>& component,
                std::size_t max_cycles, std::vector<Cycle>& out,
                bool& truncated)
      : rel_(rel), max_cycles_(max_cycles), out_(out), truncated_(truncated) {
    members_ = Bitset(rel.size());
    for (ActionId v : component) members_.set(v.index());
    blocked_.assign(rel.size(), false);
    block_map_.assign(rel.size(), {});
  }

  void run() {
    // Iterate start vertices in ascending order; restrict each search to
    // vertices >= start to avoid duplicates (Johnson's trick).
    std::vector<std::size_t> vertices = members_.to_vector();
    for (std::size_t s : vertices) {
      if (out_.size() >= max_cycles_) {
        truncated_ = true;
        return;
      }
      start_ = s;
      for (std::size_t v : vertices) {
        blocked_[v] = false;
        block_map_[v].clear();
      }
      circuit(s);
    }
  }

 private:
  bool circuit(std::size_t v) {
    if (out_.size() >= max_cycles_) {
      truncated_ = true;
      return true;
    }
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    rel_.raw_successors(ActionId(v)).for_each([&](std::size_t w) {
      if (truncated_ || w < start_ || !members_.test(w) || w == v) return;
      if (w == start_) {
        Cycle cycle;
        cycle.reserve(path_.size());
        for (std::size_t u : path_) cycle.push_back(ActionId(u));
        out_.push_back(std::move(cycle));
        found = true;
      } else if (!blocked_[w]) {
        if (circuit(w)) found = true;
      }
    });
    if (found) {
      unblock(v);
    } else {
      rel_.raw_successors(ActionId(v)).for_each([&](std::size_t w) {
        if (w < start_ || !members_.test(w) || w == v) return;
        auto& lst = block_map_[w];
        if (std::find(lst.begin(), lst.end(), v) == lst.end())
          lst.push_back(v);
      });
    }
    path_.pop_back();
    return found;
  }

  void unblock(std::size_t v) {
    blocked_[v] = false;
    auto pending = std::move(block_map_[v]);
    block_map_[v].clear();
    for (std::size_t w : pending) {
      if (blocked_[w]) unblock(w);
    }
  }

  const Relations& rel_;
  std::size_t max_cycles_;
  std::vector<Cycle>& out_;
  bool& truncated_;
  Bitset members_;
  std::size_t start_ = 0;
  std::vector<std::size_t> path_;
  std::vector<bool> blocked_;
  std::vector<std::vector<std::size_t>> block_map_;
};

}  // namespace

std::vector<std::vector<ActionId>> strongly_connected_components(
    const Relations& relations) {
  return TarjanScc(relations).run();
}

CycleAnalysis find_cycles(const Relations& relations, std::size_t max_cycles) {
  CycleAnalysis analysis;
  for (const auto& component : strongly_connected_components(relations)) {
    if (component.size() < 2) continue;  // no elementary cycle of length >= 2
    JohnsonCycles(relations, component, max_cycles, analysis.cycles,
                  analysis.truncated)
        .run();
    if (analysis.truncated) break;
  }
  return analysis;
}

}  // namespace icecube
