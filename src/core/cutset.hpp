// Proper cutset enumeration (§3.2).
//
// A *cutset* S ⊆ A is a set of actions whose removal (with their D edges)
// leaves no cycle in D. A *proper* cutset has no proper subset that is also
// a cutset — i.e. it is a minimal feedback vertex set restricted to the
// vertices that actually appear on cycles.
//
// Because every cycle must lose at least one vertex, cutsets are exactly the
// hitting sets of the family of elementary cycles, and proper cutsets are
// its minimal hitting sets. We enumerate those with a bounded
// branch-and-prune transversal computation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cycles.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"

namespace icecube {

/// A proper cutset: actions excluded from scheduling for one sub-problem.
struct Cutset {
  std::vector<ActionId> actions;  // ascending ActionId order

  [[nodiscard]] bool empty() const { return actions.empty(); }
  [[nodiscard]] std::size_t size() const { return actions.size(); }
  friend bool operator==(const Cutset&, const Cutset&) = default;
};

struct CutsetAnalysis {
  std::vector<Cutset> cutsets;  ///< sorted by size, then lexicographically
  bool truncated = false;       ///< a cap (cycles or cutsets) was hit
};

/// Enumerates all proper cutsets of the raw D edges in `relations`.
///
/// When D is acyclic this returns exactly one empty cutset, so callers can
/// uniformly iterate "one search per cutset". Results are capped at
/// `max_cutsets` (and the underlying cycle enumeration at `max_cycles`);
/// truncation is reported.
[[nodiscard]] CutsetAnalysis find_proper_cutsets(const Relations& relations,
                                                 std::size_t max_cycles = 10000,
                                                 std::size_t max_cutsets = 256);

/// Lower-level entry point: minimal hitting sets of an explicit cycle family
/// over a universe of `n` vertices. Exposed for direct testing.
[[nodiscard]] CutsetAnalysis minimal_hitting_sets(
    const std::vector<Cycle>& cycles, std::size_t n,
    std::size_t max_cutsets = 256);

}  // namespace icecube
