#include "core/cutset.hpp"

#include <algorithm>

namespace icecube {

namespace {

/// True iff `a` is a superset of any member of `sets` other than itself.
bool dominated(const Bitset& a, const std::vector<Bitset>& sets) {
  for (const auto& s : sets) {
    if (&s != &a && s.subset_of(a) && s != a) return true;
  }
  return false;
}

}  // namespace

CutsetAnalysis minimal_hitting_sets(const std::vector<Cycle>& cycles,
                                    std::size_t n, std::size_t max_cutsets) {
  CutsetAnalysis analysis;
  if (cycles.empty()) {
    analysis.cutsets.push_back(Cutset{});
    return analysis;
  }

  // Berge's incremental transversal computation: fold cycles in one at a
  // time, keeping the family of minimal partial transversals.
  std::vector<Bitset> cycle_sets;
  cycle_sets.reserve(cycles.size());
  for (const auto& cycle : cycles) {
    Bitset bs(n);
    for (ActionId v : cycle) bs.set(v.index());
    cycle_sets.push_back(std::move(bs));
  }
  // Processing larger cycles last keeps intermediate families smaller.
  std::sort(cycle_sets.begin(), cycle_sets.end(),
            [](const Bitset& a, const Bitset& b) { return a.count() < b.count(); });

  std::vector<Bitset> transversals{Bitset(n)};  // start from the empty set
  for (const auto& cycle : cycle_sets) {
    std::vector<Bitset> next;
    for (const auto& t : transversals) {
      if (!t.disjoint(cycle)) {
        next.push_back(t);  // already hits this cycle
        continue;
      }
      cycle.for_each([&](std::size_t v) {
        Bitset extended = t;
        extended.set(v);
        next.push_back(std::move(extended));
      });
    }
    // Keep only minimal members (deduplicated). Domination is decided
    // against the intact `next` family before anything is moved out of it.
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < next.size(); ++i) {
      if (dominated(next[i], next)) continue;
      bool duplicate = false;
      for (std::size_t j : keep) duplicate = duplicate || next[j] == next[i];
      if (!duplicate) keep.push_back(i);
    }
    std::vector<Bitset> minimal;
    minimal.reserve(keep.size());
    for (std::size_t i : keep) minimal.push_back(std::move(next[i]));
    transversals = std::move(minimal);
    if (transversals.size() > max_cutsets * 4) {
      // Soft cap on the intermediate family: keep the smallest sets, which
      // are the most useful cutsets (they drop the fewest actions).
      std::sort(transversals.begin(), transversals.end(),
                [](const Bitset& a, const Bitset& b) {
                  return a.count() < b.count();
                });
      transversals.resize(max_cutsets * 4);
      analysis.truncated = true;
    }
  }

  for (const auto& t : transversals) {
    Cutset cs;
    t.for_each([&cs](std::size_t v) { cs.actions.push_back(ActionId(v)); });
    analysis.cutsets.push_back(std::move(cs));
  }
  std::sort(analysis.cutsets.begin(), analysis.cutsets.end(),
            [](const Cutset& a, const Cutset& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a.actions < b.actions;
            });
  if (analysis.cutsets.size() > max_cutsets) {
    analysis.cutsets.resize(max_cutsets);
    analysis.truncated = true;
  }
  return analysis;
}

CutsetAnalysis find_proper_cutsets(const Relations& relations,
                                   std::size_t max_cycles,
                                   std::size_t max_cutsets) {
  const CycleAnalysis cycles = find_cycles(relations, max_cycles);
  CutsetAnalysis analysis =
      minimal_hitting_sets(cycles.cycles, relations.size(), max_cutsets);
  analysis.truncated = analysis.truncated || cycles.truncated;
  return analysis;
}

}  // namespace icecube
