#include "core/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "core/constraint_builder.hpp"

namespace icecube {

namespace {

Bitset cutset_bits(const Cutset& cutset, std::size_t n) {
  Bitset bits(n);
  for (ActionId a : cutset.actions) bits.set(a.index());
  return bits;
}

}  // namespace

Simulator::Simulator(const std::vector<ActionRecord>& records,
                     const Relations& relations,
                     const ReconcilerOptions& options, Policy& policy,
                     Selection& selection, SearchStats& stats,
                     const Stopwatch& clock, Deadline deadline,
                     const std::vector<Bitset>* target_overlap)
    : records_(records),
      relations_(relations),
      options_(options),
      policy_(policy),
      selection_(selection),
      stats_(stats),
      clock_(clock),
      deadline_(deadline),
      overlap_(target_overlap),
      done_(records.size()) {
  if (options.strict_pick_seed != 0) {
    strict_rng_.emplace(options.strict_pick_seed);
  }
}

std::uint64_t Simulator::causal_key(ActionId action) const {
  std::uint64_t state = 0x9d3f5ca1b7e42681ULL ^ action.value();
  std::uint64_t hash = splitmix64(state);
  const Bitset& overlap = (*overlap_)[action.index()];
  for (ActionId executed : prefix_) {
    if (overlap.test(executed.index())) {
      state ^= (hash << 1) ^ executed.value();
      hash ^= splitmix64(state);
    }
  }
  return hash;
}

void Simulator::start(const Cutset& cutset, const Universe& initial) {
  assert(records_.size() == relations_.size());
  if (options_.memoize_failures && overlap_ == nullptr) {
    // No shared index was handed in: build our own once (reused across
    // start() calls — the overlap relation depends only on the action set).
    owned_overlap_ = build_target_overlap(records_);
    overlap_ = &owned_overlap_;
  }
  clone_mark_ = Universe::thread_counters();
  known_failures_.clear();  // keys are relative to this cutset's searches
  const Bitset excluded = cutset_bits(cutset, records_.size());
  scheduler_.emplace(relations_, options_.heuristic, options_.b_rule,
                     excluded, options_.prune_equivalent);
  done_ = excluded;
  prefix_.clear();
  skipped_.clear();
  cut_actions_ = cutset.actions;
  stack_.clear();
  stop_ = false;
  if (!push_node(initial, ActionId())) {
    ++stats_.prefix_prunes;  // the application pruned the root
  }
}

bool Simulator::run(const Cutset& cutset, const Universe& initial) {
  start(cutset, initial);
  (void)step(UINT64_MAX);
  return !stop_;
}

void Simulator::fill_candidates(Frame& frame) {
  frame.candidates = scheduler_->successors(
      done_, last_scheduled(), frame.extra_deps,
      strict_rng_ ? &*strict_rng_ : nullptr);
  std::erase_if(frame.candidates,
                [&frame](ActionId a) { return frame.tried.test(a.index()); });
  frame.next = 0;
}

Simulator::Frame Simulator::acquire_frame() {
  if (spare_frames_.empty()) {
    Frame frame;
    frame.tried = Bitset(records_.size());
    return frame;
  }
  Frame frame = std::move(spare_frames_.back());
  spare_frames_.pop_back();
  // Vectors keep their capacity and the bitset its words: in steady state
  // a recycled frame needs no heap allocation at all.
  frame.candidates.clear();
  frame.extra_deps.clear();
  frame.tried.clear();
  frame.next = 0;
  frame.skips = 0;
  frame.explored_child = false;
  frame.recompute = false;
  frame.via = ActionId();
  return frame;
}

bool Simulator::push_node(Universe state, ActionId via) {
  const PrefixView view{prefix_, skipped_};
  if (!policy_.keep_prefix(view, state)) return false;
  Frame frame = acquire_frame();
  frame.state = std::move(state);
  frame.via = via;
  policy_.extra_dependencies(view, frame.extra_deps);
  fill_candidates(frame);
  policy_.order_candidates(view, frame.candidates);
  stack_.push_back(std::move(frame));
  return true;
}

void Simulator::pop_node() {
  Frame& frame = stack_.back();
  for (; frame.skips > 0; --frame.skips) {
    done_.reset(skipped_.back().index());
    skipped_.pop_back();
  }
  if (frame.via.valid()) {
    assert(!prefix_.empty() && prefix_.back() == frame.via);
    prefix_.pop_back();
    done_.reset(frame.via.index());
  }
  Frame spare = std::move(stack_.back());
  stack_.pop_back();
  // Release the universe before parking the frame: a spare frame keeping
  // slot references alive would force detach-clones in live ancestors.
  spare.state = Universe();
  spare_frames_.push_back(std::move(spare));
}

void Simulator::flush_clone_counters() {
  const Universe::CloneCounters& now = Universe::thread_counters();
  stats_.object_clones += now.object_clones - clone_mark_.object_clones;
  stats_.clones_avoided += now.clones_avoided - clone_mark_.clones_avoided;
  stats_.bytes_cloned += now.bytes_cloned - clone_mark_.bytes_cloned;
  clone_mark_ = now;
}

bool Simulator::step(std::uint64_t schedule_budget) {
  std::uint64_t terminals = 0;
  while (!stack_.empty() && !stop_ && terminals < schedule_budget) {
    if (deadline_.expired()) {
      stats_.hit_limit = true;
      stop_ = true;
      break;
    }

    Frame& frame = stack_.back();
    if (frame.recompute) {
      fill_candidates(frame);
      const PrefixView view{prefix_, skipped_};
      policy_.order_candidates(view, frame.candidates);
      frame.recompute = false;
    }
    if (frame.next >= frame.candidates.size()) {
      if (!frame.explored_child) {
        record_outcome(frame.state);
        ++terminals;
      }
      pop_node();
      continue;
    }

    const ActionId cand = frame.candidates[frame.next++];
    frame.tried.set(cand.index());

    ++stats_.sim_steps;
    if (stats_.sim_steps > options_.limits.max_steps) {
      stats_.hit_limit = true;
      stop_ = true;
      break;
    }

    const Action& action = *records_[cand.index()].action;
    FailureKind failure = FailureKind::kPrecondition;
    Universe shadow;
    bool ok = false;
    std::uint64_t key = 0;
    bool memoized = false;
    if (options_.memoize_failures) {
      key = causal_key(cand);
      if (const auto it = known_failures_.find(key);
          it != known_failures_.end()) {
        // §6: this action fails identically after any prefix with the same
        // causal context; skip the re-simulation.
        failure = it->second;
        memoized = true;
        ++stats_.memoized_failures;
      }
    }
    if (!memoized) {
      if (!action.precondition(frame.state)) {
        ++stats_.precondition_failures;
      } else {
        shadow = frame.state;  // shadow copy (§3.4)
        ++stats_.state_clones;
        if (action.execute(shadow)) {
          ok = true;
        } else {
          ++stats_.execution_failures;
          failure = FailureKind::kExecution;
        }
      }
      if (!ok && options_.memoize_failures) {
        known_failures_.emplace(key, failure);
      }
    }

    if (!ok) {
      const PrefixView view{prefix_, skipped_};
      policy_.on_failure(view, frame.state, cand, failure);
      if (options_.failure_mode == FailureMode::kSkipAction) {
        // Drop the action for the remainder of this subtree; re-derive the
        // candidates (the skip may unlock D-successors).
        done_.set(cand.index());
        skipped_.push_back(cand);
        ++frame.skips;
        frame.recompute = true;
      }
      continue;  // AbortBranch: siblings still explored
    }

    done_.set(cand.index());
    prefix_.push_back(cand);
    frame.explored_child = true;
    if (!push_node(std::move(shadow), cand)) {
      // Application pruned the child prefix: unwind the action.
      ++stats_.prefix_prunes;
      prefix_.pop_back();
      done_.reset(cand.index());
    }
  }
  flush_clone_counters();
  return !stack_.empty() && !stop_;
}

void Simulator::record_outcome(const Universe& state) {
  const bool complete = done_.count() == records_.size();
  if (complete) {
    ++stats_.schedules_completed;
  } else {
    ++stats_.dead_ends;
  }

  const bool record = complete || options_.record_partial_outcomes;
  if (record) {
    Outcome outcome;
    outcome.schedule = prefix_;
    outcome.skipped = skipped_;
    outcome.cutset = cut_actions_;
    // Borrowed view: the policy cost function may read the final state, but
    // the keep-K gate below rejects most outcomes — the real (per-mode)
    // state copy is materialised only for survivors.
    outcome.final_state = state.snapshot();
    outcome.complete = complete;
    outcome.cost = policy_.cost(outcome);

    if (!policy_.on_outcome(outcome)) stop_ = true;
    const double cost = outcome.cost;
    const std::size_t n_skipped = outcome.skipped.size();
    if (selection_.would_keep(outcome)) {
      outcome.final_state = state;
      if (selection_.offer(std::move(outcome))) {
        stats_.time_to_best = clock_.seconds();
        stats_.schedules_to_best = stats_.schedules_explored();
        if (improvements_ != nullptr) {
          improvements_->push_back({cost, complete, n_skipped,
                                    stats_.schedules_explored(),
                                    clock_.seconds()});
        }
      }
    }
  }

  if (complete && options_.stop_at_first_complete) stop_ = true;
  if (stats_.schedules_explored() >= options_.limits.max_schedules) {
    stats_.hit_limit = true;
    stop_ = true;
  }
}

}  // namespace icecube
