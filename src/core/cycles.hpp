// Elementary-cycle enumeration over the raw dependence graph (§3.2).
//
// A schedule cannot satisfy D and contain all actions of a D-cycle, so the
// first step of the scheduler is to find the cycles. We enumerate the
// elementary cycles (Johnson's algorithm, restricted to one strongly
// connected component at a time) with an explicit cap — reaching the cap is
// reported, never silent.
#pragma once

#include <cstddef>
#include <vector>

#include "core/relations.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"

namespace icecube {

/// One elementary cycle, as the ordered vertex list [c1, c2, ..., ck] with
/// edges c1→c2→...→ck→c1.
using Cycle = std::vector<ActionId>;

struct CycleAnalysis {
  std::vector<Cycle> cycles;
  bool truncated = false;  ///< true iff `max_cycles` was reached
};

/// Enumerates elementary cycles of the raw D edges in `relations`.
/// Self-loops (aDa beyond the formal reflexivity) are ignored: they carry no
/// ordering information.
[[nodiscard]] CycleAnalysis find_cycles(const Relations& relations,
                                        std::size_t max_cycles = 10000);

/// Strongly connected components (Tarjan). Returns one vertex list per SCC;
/// used by the cycle finder and directly testable.
[[nodiscard]] std::vector<std::vector<ActionId>> strongly_connected_components(
    const Relations& relations);

}  // namespace icecube
