// The parallel reconciliation driver: concurrent per-cutset searches with a
// deterministic, budget-carving merge.
//
// Independent proper cutsets are independent search problems — each gets its
// own restricted relation set, scheduler and simulator, and only meets the
// others in the selection stage. The driver exploits exactly that: every
// cutset's search runs on a pool worker against a private Selection and
// SearchStats, and the results are merged *in cutset order*, carving each
// cutset's effective schedule/step budget out of the global SearchLimits the
// way the sequential loop's shared counters would. A cutset whose parallel
// run overshot its carved budget is re-run (on the merging thread) under the
// exact carved limits, so outcomes, schedule orderings and non-timing stats
// are bit-for-bit identical to `threads=1` for every thread count. See
// DESIGN.md §8.
//
// One deliberate exception: the clone counters (SearchStats::object_clones /
// clones_avoided / bytes_cloned). Workers gate final-state materialisation
// against a *local* keep-K (the shared one does not exist yet), so a worker
// may materialise a state the sequential loop would have skipped. Outcomes
// and every search counter are still identical — only the clone accounting
// may differ across thread counts.
#pragma once

#include <vector>

#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/relations.hpp"
#include "core/selection.hpp"
#include "core/universe.hpp"
#include "util/bitset.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Searches every cutset of `cutsets` concurrently on `pool` (the calling
/// thread participates) and merges outcomes into `selection` and counters
/// into `stats`, replicating the sequential cutset loop bit-for-bit.
///
/// `policy` hooks are invoked from worker threads concurrently and must be
/// thread-safe (see ReconcilerOptions::threads). `deadline` must be the
/// run's shared deadline; `clock` the run stopwatch (used only for timing
/// stats). `target_overlap` is the shared §6 overlap index (see
/// build_target_overlap) — null when failure memoization is off.
void run_cutsets_parallel(const std::vector<ActionRecord>& records,
                          const Relations& relations, const Universe& initial,
                          const ReconcilerOptions& options, Policy& policy,
                          const std::vector<Cutset>& cutsets,
                          const Deadline& deadline, const Stopwatch& clock,
                          ThreadPool& pool, Selection& selection,
                          SearchStats& stats,
                          const std::vector<Bitset>* target_overlap = nullptr);

}  // namespace icecube
