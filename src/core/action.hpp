// Actions — the unit recorded in logs (§2.2).
//
// An action names its target objects, carries a side-effect-free
// precondition and an operation whose boolean result is its post-condition,
// plus a tag used for static constraint evaluation. Pre- and post-conditions
// are the *dynamic* constraints of the model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tag.hpp"
#include "core/universe.hpp"
#include "util/ids.hpp"

namespace icecube {

/// Abstract action. Concrete actions are immutable once logged; `execute`
/// mutates the universe it is given (typically a shadow copy), never the
/// action itself. Actions are deterministic: replaying a schedule against
/// the same initial state yields the same final state (§2, footnote 2).
class Action {
 public:
  Action() = default;
  Action(const Action&) = default;
  Action& operator=(const Action&) = default;
  Action(Action&&) = default;
  Action& operator=(Action&&) = default;
  virtual ~Action() = default;

  /// The shared object(s) this action reads or writes.
  [[nodiscard]] virtual std::vector<ObjectId> targets() const = 0;

  /// Dynamic constraint checked before execution; must not mutate `u`.
  [[nodiscard]] virtual bool precondition(const Universe& u) const = 0;

  /// Performs the operation on `u`. The return value is the post-condition:
  /// `false` signals an execution failure (a dynamic conflict).
  virtual bool execute(Universe& u) const = 0;

  /// Static metadata consumed by `SharedObject::order`.
  [[nodiscard]] virtual const Tag& tag() const = 0;

  [[nodiscard]] virtual std::string describe() const {
    return tag().describe();
  }
};

using ActionPtr = std::shared_ptr<const Action>;

/// Convenience base for the common case of a fixed tag and target list.
class SimpleAction : public Action {
 public:
  SimpleAction(Tag tag, std::vector<ObjectId> targets)
      : tag_(std::move(tag)), targets_(std::move(targets)) {}

  [[nodiscard]] std::vector<ObjectId> targets() const override {
    return targets_;
  }
  [[nodiscard]] const Tag& tag() const override { return tag_; }

 private:
  Tag tag_;
  std::vector<ObjectId> targets_;
};

}  // namespace icecube
