#include "core/selection.hpp"

#include <algorithm>
#include <limits>

namespace icecube {

bool Selection::better(const Outcome& a, const Outcome& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.complete != b.complete) return a.complete;
  if (a.skipped.size() != b.skipped.size())
    return a.skipped.size() < b.skipped.size();
  return false;  // equivalent; first-found wins (stable)
}

bool Selection::offer(Outcome&& outcome) {
  outcome.cost = policy_->cost(outcome);
  const bool is_best = kept_.empty() || better(outcome, kept_.front());

  // Insert in sorted position; drop the tail beyond `keep_`.
  auto pos = std::upper_bound(
      kept_.begin(), kept_.end(), outcome,
      [](const Outcome& a, const Outcome& b) { return better(a, b); });
  if (static_cast<std::size_t>(pos - kept_.begin()) < keep_) {
    kept_.insert(pos, std::move(outcome));
    if (kept_.size() > keep_) kept_.pop_back();
  }
  return is_best;
}

double Selection::best_cost() const {
  if (kept_.empty()) return std::numeric_limits<double>::infinity();
  return kept_.front().cost;
}

}  // namespace icecube
