// The object universe (§2.1) and the shared-object interface.
//
// During isolated execution a site runs applications against a local replica
// of the shared objects — the *object universe*. The simulator replays
// candidate schedules against *shadow copies* of the universe (§3.4), so the
// cost of taking a shadow copy sits directly on the search hot path.
//
// The universe is therefore *copy-on-write*: each slot holds a shared,
// conceptually-immutable object pointer, so copying a universe is O(n)
// pointer copies, and only a mutable access (`at`/`as` on a non-const
// universe) *detaches* the touched slot — cloning the object iff some other
// universe still shares it. Executing an action against a shadow copy thus
// clones O(|action.targets()|) objects instead of O(|universe|).
//
// Invariant every caller must respect: a mutable reference obtained from
// `at`/`as` is invalidated by copying the universe — re-fetch it after any
// copy, or the write leaks into the snapshot. (All engine code mutates
// immediately after the access; see Action::execute.)
//
// The pre-COW behaviour — every copy deep-clones every object — is kept
// alive as `CopyMode::kEager`, the oracle the equivalence tests and benches
// run against (see ReconcilerOptions::eager_state_copies).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/constraint.hpp"
#include "util/crc32.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace icecube {

class Action;

/// Whether the two actions given to `SharedObject::order` come from the same
/// input log. The paper's order tables differ between the two cases
/// (Figures 2/3 vs 4/5, Figures 7 vs 8).
enum class LogRelation : std::uint8_t { kSameLog, kAcrossLogs };

/// A replicated shared object. Concrete types provide state, a deep `clone`,
/// and the `order` method that bridges object semantics to static
/// constraints (§2.4).
class SharedObject {
 public:
  SharedObject() = default;
  SharedObject(const SharedObject&) = default;
  SharedObject& operator=(const SharedObject&) = default;
  SharedObject(SharedObject&&) = default;
  SharedObject& operator=(SharedObject&&) = default;
  virtual ~SharedObject() = default;

  /// Deep copy, used when a copy-on-write slot detaches (and for every slot
  /// of an eager-mode universe copy).
  [[nodiscard]] virtual std::unique_ptr<SharedObject> clone() const = 0;

  /// Static-constraint bridge: is ordering `a` before `b` safe / maybe /
  /// unsafe according to this object's semantics? Must depend only on the
  /// actions' tags (and `rel`), never on object state.
  ///
  /// For `kSameLog` pairs the engine calls this only for the direction that
  /// *reverses* the log: "given that the log contains b before a, is it safe
  /// to swap them and execute a before b?"
  [[nodiscard]] virtual Constraint order(const Action& a, const Action& b,
                                         LogRelation rel) const = 0;

  /// Human-readable snapshot of the object's state, for demos and debugging.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Canonical rendering of the *complete* state: two objects are in the
  /// same state iff their fingerprints are equal. Used to check replay
  /// equivalence (log cleaning, determinism tests). Defaults to
  /// `describe()`; override when `describe()` is only a summary.
  [[nodiscard]] virtual std::string fingerprint() const { return describe(); }

  /// Rough in-memory footprint, feeding the `bytes_cloned` accounting.
  /// Override for objects with dynamic payloads; precision is not required —
  /// the counter ranks clone cost, it does not meter an allocator.
  [[nodiscard]] virtual std::size_t approx_bytes() const { return 64; }
};

/// An indexed collection of shared objects, copy-on-write by default (see
/// file comment).
class Universe {
 public:
  /// How copies of this universe behave. The mode is inherited by copies.
  enum class CopyMode : std::uint8_t {
    kCopyOnWrite,  ///< copy shares slots; mutable access detaches (default)
    kEager         ///< copy deep-clones every object (the pre-COW oracle)
  };

  /// Thread-local clone accounting (see `thread_counters`). Monotonic;
  /// consumers record a mark and subtract.
  struct CloneCounters {
    std::uint64_t object_clones = 0;   ///< SharedObject::clone invocations
    std::uint64_t clones_avoided = 0;  ///< slot copies served by sharing
    std::uint64_t bytes_cloned = 0;    ///< approx_bytes of cloned objects
  };

  /// The calling thread's clone counters. Thread-local so the parallel
  /// driver's workers account their own searches without synchronisation.
  [[nodiscard]] static CloneCounters& thread_counters() {
    thread_local CloneCounters counters;
    return counters;
  }

  Universe() = default;

  Universe(const Universe& other) { copy_from(other); }
  Universe& operator=(const Universe& other) {
    if (this != &other) {
      slots_.clear();
      copy_from(other);
    }
    return *this;
  }
  Universe(Universe&&) noexcept = default;
  Universe& operator=(Universe&&) noexcept = default;

  [[nodiscard]] CopyMode copy_mode() const { return mode_; }
  /// Sets how *future* copies of this universe (and their copies) behave.
  void set_copy_mode(CopyMode mode) { mode_ = mode; }

  /// Adds an object and returns its id. Ids are dense and stable.
  ObjectId add(std::unique_ptr<SharedObject> obj) {
    assert(obj != nullptr);
    slots_.push_back(Slot{std::shared_ptr<SharedObject>(std::move(obj)),
                          nullptr, 0});
    return ObjectId(slots_.size() - 1);
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Mutable access: detaches the slot (clones the object iff it is still
  /// shared with another universe), bumps its version and invalidates its
  /// cached fingerprint hash. The reference is valid until the universe is
  /// copied or destroyed.
  [[nodiscard]] SharedObject& at(ObjectId id) {
    assert(id.index() < slots_.size());
    Slot& slot = slots_[id.index()];
    detach(slot);
    return *slot.object;
  }
  [[nodiscard]] const SharedObject& at(ObjectId id) const {
    assert(id.index() < slots_.size());
    return *slots_[id.index()].object;
  }

  /// Typed accessor; asserts on type mismatch in debug builds.
  template <typename T>
  [[nodiscard]] T& as(ObjectId id) {
    auto* p = dynamic_cast<T*>(&at(id));
    assert(p != nullptr && "universe object has unexpected type");
    return *p;
  }
  template <typename T>
  [[nodiscard]] const T& as(ObjectId id) const {
    const auto* p = dynamic_cast<const T*>(&at(id));
    assert(p != nullptr && "universe object has unexpected type");
    return *p;
  }

  [[nodiscard]] std::string describe() const {
    std::string out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      out += "[" + std::to_string(i) + "] " + slots_[i].object->describe() +
             "\n";
    }
    return out;
  }

  /// Canonical rendering of the full state (see SharedObject::fingerprint).
  /// Two universes are in the same state iff their fingerprints are equal.
  [[nodiscard]] std::string fingerprint() const {
    std::string out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      out += "[" + std::to_string(i) + "] " + slots_[i].object->fingerprint() +
             "\n";
    }
    return out;
  }

  /// 64-bit digest of `fingerprint()`, assembled from per-slot hashes that
  /// are cached on the slot (and shared with every universe sharing the
  /// object) until the slot detaches. Equality of hashes is equality of
  /// states up to a ~2^-64 collision — the convergence, log-cleaning and
  /// replay checks accept that in exchange for skipping the full string
  /// concatenation of `fingerprint()`.
  [[nodiscard]] std::uint64_t fingerprint_hash() const {
    std::uint64_t state = 0x1cecbe0ULL ^ slots_.size();
    std::uint64_t h = splitmix64(state);
    for (const Slot& slot : slots_) {
      state ^= slot_fingerprint_hash(slot);
      h ^= splitmix64(state);
    }
    return h;
  }

  /// Per-slot 64-bit fingerprint hash (cached on the slot; see
  /// `fingerprint_hash`). The local-search backend maintains an incremental
  /// XOR digest of these across suffix re-simulations instead of hashing the
  /// whole universe after every move.
  [[nodiscard]] std::uint64_t slot_fingerprint(ObjectId id) const {
    assert(id.index() < slots_.size());
    return slot_fingerprint_hash(slots_[id.index()]);
  }

  /// The slot's detach count — bumped by every mutable access. Snapshot it
  /// to detect writes (the detach-semantics tests rely on this).
  [[nodiscard]] std::uint64_t slot_version(ObjectId id) const {
    assert(id.index() < slots_.size());
    return slots_[id.index()].version;
  }

  /// Identity of the stored object, for aliasing assertions: two universes
  /// share a slot iff the addresses are equal.
  [[nodiscard]] const SharedObject* object_address(ObjectId id) const {
    assert(id.index() < slots_.size());
    return slots_[id.index()].object.get();
  }

  /// Zero-clone aliasing copy, regardless of copy mode, with no counter
  /// attribution. For transient read-only views (e.g. handing a terminal
  /// state to the policy cost function before the keep-K gate decides
  /// whether a real copy is warranted). The snapshot is still safe to
  /// mutate — detach protects it — but such writes defeat its purpose.
  [[nodiscard]] Universe snapshot() const {
    Universe out;
    out.mode_ = mode_;
    out.slots_ = slots_;
    return out;
  }

  /// Re-aliases one slot to `other`'s current object for the same id
  /// (shared, zero-clone — detach protects later writes). The streaming
  /// daemon rewinds just the slots a dirty conflict component touches back
  /// to the pristine initial state this way, instead of copying the whole
  /// slot vector per re-solve.
  void share_slot_from(const Universe& other, ObjectId id) {
    assert(id.index() < slots_.size() && id.index() < other.slots_.size());
    slots_[id.index()] = other.slots_[id.index()];
  }

 private:
  /// One object slot. `fp_cache` memoises the object's fingerprint hash
  /// (null until first computed; 0 inside means "unset"); it travels with
  /// the object pointer on copy so shared slots share the cached hash, and
  /// is dropped — not cleared — on detach, leaving other universes' caches
  /// intact. Atomic because two universes sharing a slot may race to fill
  /// the cache from different threads (same value either way).
  struct Slot {
    std::shared_ptr<SharedObject> object;
    mutable std::shared_ptr<std::atomic<std::uint64_t>> fp_cache;
    std::uint64_t version = 0;
  };

  void detach(Slot& slot) {
    if (slot.object.use_count() > 1) {
      CloneCounters& counters = thread_counters();
      ++counters.object_clones;
      counters.bytes_cloned += slot.object->approx_bytes();
      slot.object = std::shared_ptr<SharedObject>(slot.object->clone());
    }
    slot.fp_cache.reset();
    ++slot.version;
  }

  [[nodiscard]] static std::uint64_t slot_fingerprint_hash(const Slot& slot) {
    if (slot.fp_cache != nullptr) {
      const std::uint64_t cached =
          slot.fp_cache->load(std::memory_order_relaxed);
      if (cached != 0) return cached;
    }
    const std::string fp = slot.object->fingerprint();
    // CRC-32 of the content plus an FNV-1a fold: two independent passes'
    // worth of mixing from one scan, then SplitMix64 to spread the bits.
    Crc32 crc;
    crc.update(fp);
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    for (const char c : fp) {
      fnv = (fnv ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    std::uint64_t state =
        fnv ^ (static_cast<std::uint64_t>(crc.value()) << 32) ^ fp.size();
    std::uint64_t h = splitmix64(state);
    if (h == 0) h = 1;  // 0 is the "unset" sentinel
    if (slot.fp_cache == nullptr) {
      slot.fp_cache = std::make_shared<std::atomic<std::uint64_t>>(h);
    } else {
      slot.fp_cache->store(h, std::memory_order_relaxed);
    }
    return h;
  }

  void copy_from(const Universe& other) {
    mode_ = other.mode_;
    CloneCounters& counters = thread_counters();
    slots_.reserve(other.slots_.size());
    if (mode_ == CopyMode::kEager) {
      for (const Slot& slot : other.slots_) {
        ++counters.object_clones;
        counters.bytes_cloned += slot.object->approx_bytes();
        slots_.push_back(Slot{
            std::shared_ptr<SharedObject>(slot.object->clone()),
            slot.fp_cache, slot.version});
      }
    } else {
      counters.clones_avoided += other.slots_.size();
      slots_ = other.slots_;
    }
  }

  std::vector<Slot> slots_;
  CopyMode mode_ = CopyMode::kCopyOnWrite;
};

}  // namespace icecube
