// The object universe (§2.1) and the shared-object interface.
//
// During isolated execution a site runs applications against a local replica
// of the shared objects — the *object universe*. The simulator replays
// candidate schedules against *shadow copies* of the universe, which is why
// every shared object must be deep-cloneable.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "core/constraint.hpp"
#include "util/ids.hpp"

namespace icecube {

class Action;

/// Whether the two actions given to `SharedObject::order` come from the same
/// input log. The paper's order tables differ between the two cases
/// (Figures 2/3 vs 4/5, Figures 7 vs 8).
enum class LogRelation : std::uint8_t { kSameLog, kAcrossLogs };

/// A replicated shared object. Concrete types provide state, a deep `clone`,
/// and the `order` method that bridges object semantics to static
/// constraints (§2.4).
class SharedObject {
 public:
  SharedObject() = default;
  SharedObject(const SharedObject&) = default;
  SharedObject& operator=(const SharedObject&) = default;
  SharedObject(SharedObject&&) = default;
  SharedObject& operator=(SharedObject&&) = default;
  virtual ~SharedObject() = default;

  /// Deep copy, used to create shadow universes for simulation.
  [[nodiscard]] virtual std::unique_ptr<SharedObject> clone() const = 0;

  /// Static-constraint bridge: is ordering `a` before `b` safe / maybe /
  /// unsafe according to this object's semantics? Must depend only on the
  /// actions' tags (and `rel`), never on object state.
  ///
  /// For `kSameLog` pairs the engine calls this only for the direction that
  /// *reverses* the log: "given that the log contains b before a, is it safe
  /// to swap them and execute a before b?"
  [[nodiscard]] virtual Constraint order(const Action& a, const Action& b,
                                         LogRelation rel) const = 0;

  /// Human-readable snapshot of the object's state, for demos and debugging.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Canonical rendering of the *complete* state: two objects are in the
  /// same state iff their fingerprints are equal. Used to check replay
  /// equivalence (log cleaning, determinism tests). Defaults to
  /// `describe()`; override when `describe()` is only a summary.
  [[nodiscard]] virtual std::string fingerprint() const { return describe(); }
};

/// An indexed collection of shared objects. Copyable: copying a universe
/// deep-clones every object (a shadow copy in the paper's terms).
class Universe {
 public:
  Universe() = default;

  Universe(const Universe& other) { copy_from(other); }
  Universe& operator=(const Universe& other) {
    if (this != &other) {
      objects_.clear();
      copy_from(other);
    }
    return *this;
  }
  Universe(Universe&&) noexcept = default;
  Universe& operator=(Universe&&) noexcept = default;

  /// Adds an object and returns its id. Ids are dense and stable.
  ObjectId add(std::unique_ptr<SharedObject> obj) {
    assert(obj != nullptr);
    objects_.push_back(std::move(obj));
    return ObjectId(objects_.size() - 1);
  }

  [[nodiscard]] std::size_t size() const { return objects_.size(); }

  [[nodiscard]] SharedObject& at(ObjectId id) {
    assert(id.index() < objects_.size());
    return *objects_[id.index()];
  }
  [[nodiscard]] const SharedObject& at(ObjectId id) const {
    assert(id.index() < objects_.size());
    return *objects_[id.index()];
  }

  /// Typed accessor; asserts on type mismatch in debug builds.
  template <typename T>
  [[nodiscard]] T& as(ObjectId id) {
    auto* p = dynamic_cast<T*>(&at(id));
    assert(p != nullptr && "universe object has unexpected type");
    return *p;
  }
  template <typename T>
  [[nodiscard]] const T& as(ObjectId id) const {
    const auto* p = dynamic_cast<const T*>(&at(id));
    assert(p != nullptr && "universe object has unexpected type");
    return *p;
  }

  [[nodiscard]] std::string describe() const {
    std::string out;
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      out += "[" + std::to_string(i) + "] " + objects_[i]->describe() + "\n";
    }
    return out;
  }

  /// Canonical rendering of the full state (see SharedObject::fingerprint).
  [[nodiscard]] std::string fingerprint() const {
    std::string out;
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      out += "[" + std::to_string(i) + "] " + objects_[i]->fingerprint() + "\n";
    }
    return out;
  }

 private:
  void copy_from(const Universe& other) {
    objects_.reserve(other.objects_.size());
    for (const auto& obj : other.objects_) objects_.push_back(obj->clone());
  }

  std::vector<std::unique_ptr<SharedObject>> objects_;
};

}  // namespace icecube
