#include "core/degrade.hpp"

#include <cstddef>
#include <optional>
#include <vector>

namespace icecube {

namespace {

/// Replays `schedule` (indices into `records`) from `initial`. Returns the
/// final state, or nullopt if any action fails.
std::optional<Universe> replay(const Universe& initial,
                               const std::vector<ActionRecord>& records,
                               const std::vector<std::size_t>& schedule) {
  Universe state = initial;
  for (std::size_t idx : schedule) {
    const Action& action = *records[idx].action;
    if (!action.precondition(state)) return std::nullopt;
    if (!action.execute(state)) return std::nullopt;
  }
  return state;
}

}  // namespace

Outcome greedy_degraded_outcome(const Universe& initial,
                                const std::vector<ActionRecord>& records) {
  std::vector<std::size_t> schedule;
  Outcome outcome;
  outcome.degraded = true;

  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    // Respect log order: never insert before an already-placed action of
    // the same log (flatten order guarantees that action has a lower idx).
    std::size_t floor = 0;
    for (std::size_t pos = 0; pos < schedule.size(); ++pos) {
      if (records[schedule[pos]].same_log(records[idx])) floor = pos + 1;
    }

    bool placed = false;
    for (std::size_t pos = floor; pos <= schedule.size(); ++pos) {
      std::vector<std::size_t> candidate = schedule;
      candidate.insert(candidate.begin() + static_cast<std::ptrdiff_t>(pos),
                       idx);
      if (replay(initial, records, candidate)) {
        schedule = std::move(candidate);
        placed = true;
        break;
      }
    }
    if (!placed) outcome.skipped.push_back(ActionId(idx));
  }

  outcome.schedule.reserve(schedule.size());
  for (std::size_t idx : schedule) outcome.schedule.push_back(ActionId(idx));
  auto final_state = replay(initial, records, schedule);
  outcome.final_state = final_state ? std::move(*final_state) : initial;
  // Complete in the engine's sense only if nothing was dropped; the
  // degraded flag still marks it as a fallback, not a search result.
  outcome.complete = outcome.skipped.empty();
  return outcome;
}

}  // namespace icecube
