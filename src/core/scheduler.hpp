// Successor-candidate computation (§3.3).
//
// Given a prefix P of already chosen actions, the scheduler derives:
//
//   S — actions whose (closed) D-predecessors are all accounted for,
//   C — members of S that I-follow the last action of P,
//   B — members of S that still have an available I-predecessor,
//
// and applies the heuristic H to decide which of them to try next:
//
//   H = All               : S
//   H = Safe,   C ≠ ∅     : C
//   H = Safe,   C = ∅     : S
//   H = Strict, C ≠ ∅     : one arbitrary member of C
//   H = Strict, C = ∅     : S − B
#pragma once

#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/relations.hpp"
#include "util/bitset.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace icecube {

/// Stateless-per-node candidate generator. One instance serves a whole
/// search over a fixed relation set and cutset.
class CandidateScheduler {
 public:
  /// `excluded` are the actions removed by the active cutset; they are never
  /// candidates, and dependence on them is treated as satisfied (D only
  /// constrains schedules that contain both actions). With
  /// `prune_equivalent`, candidates that would create an adjacent
  /// commuting inversion (see ReconcilerOptions::prune_equivalent) are
  /// dropped; the pruning is suppressed while prefix-conditional extra
  /// dependencies are active, since those can invalidate the exchange
  /// argument.
  CandidateScheduler(const Relations& relations, Heuristic heuristic,
                     BRule b_rule, Bitset excluded,
                     bool prune_equivalent = false);

  /// The set S for a search node. `done` must contain every scheduled,
  /// skipped and excluded action. `extra_deps` are prefix-conditional
  /// dependencies (a must precede b) injected by the application policy.
  [[nodiscard]] Bitset eligible(
      const Bitset& done,
      const std::vector<std::pair<ActionId, ActionId>>& extra_deps) const;

  /// Applies H and returns the candidates to try, in ascending id order
  /// (the application policy may reorder them afterwards). `last` is the
  /// final action of the prefix (invalid id at the root). `rng` is consulted
  /// only by H=Strict when configured for random picks.
  [[nodiscard]] std::vector<ActionId> successors(
      const Bitset& done, ActionId last,
      const std::vector<std::pair<ActionId, ActionId>>& extra_deps,
      Rng* rng) const;

  [[nodiscard]] const Bitset& excluded() const { return excluded_; }

 private:
  const Relations& relations_;
  Heuristic heuristic_;
  BRule b_rule_;
  Bitset excluded_;
  bool prune_equivalent_;
};

}  // namespace icecube
