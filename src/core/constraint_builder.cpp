#include "core/constraint_builder.hpp"

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <sstream>
#include <utility>

#include "util/thread_pool.hpp"

namespace icecube {

namespace {

/// Common targets of two actions (both vectors are tiny; quadratic scan).
std::vector<ObjectId> common_targets(const Action& a, const Action& b) {
  std::vector<ObjectId> out;
  const auto ta = a.targets();
  const auto tb = b.targets();
  for (ObjectId x : ta) {
    if (std::find(tb.begin(), tb.end(), x) != tb.end() &&
        std::find(out.begin(), out.end(), x) == out.end()) {
      out.push_back(x);
    }
  }
  return out;
}

/// Allocation-free variant over pre-fetched target lists, writing into a
/// caller-owned scratch vector (reused across pairs by the sparse builder).
void common_targets_into(const std::vector<ObjectId>& ta,
                         const std::vector<ObjectId>& tb,
                         std::vector<ObjectId>& out) {
  out.clear();
  for (ObjectId x : ta) {
    if (std::find(tb.begin(), tb.end(), x) != tb.end() &&
        std::find(out.begin(), out.end(), x) == out.end()) {
      out.push_back(x);
    }
  }
}

/// Rules 2–3 of §2.3 for the direction "a before b", given the shared-target
/// set (rule 1 is the caller's: empty `shared` ⇒ safe). The iteration order
/// of `shared` does not affect the result — `most_constraining` is a
/// commutative max — so one set serves both directions of a pair.
Constraint evaluate_direction(const Universe& universe, const ActionRecord& a,
                              const ActionRecord& b,
                              const std::vector<ObjectId>& shared,
                              std::uint64_t& order_calls) {
  if (shared.empty()) return Constraint::kSafe;
  if (a.before_in_log(b)) return Constraint::kSafe;
  const LogRelation rel =
      a.same_log(b) ? LogRelation::kSameLog : LogRelation::kAcrossLogs;
  Constraint result = Constraint::kSafe;
  for (ObjectId target : shared) {
    ++order_calls;
    result = most_constraining(
        result, universe.at(target).order(*a.action, *b.action, rel));
    if (result == Constraint::kUnsafe) break;  // cannot get worse
  }
  return result;
}

}  // namespace

Constraint evaluate_constraint(const Universe& universe, const ActionRecord& a,
                               const ActionRecord& b) {
  std::uint64_t order_calls = 0;
  return evaluate_direction(universe, a, b,
                            common_targets(*a.action, *b.action), order_calls);
}

Constraint evaluate_constraint_over(const Universe& universe,
                                    const ActionRecord& a,
                                    const ActionRecord& b,
                                    const std::vector<ObjectId>& shared,
                                    std::uint64_t& order_calls) {
  return evaluate_direction(universe, a, b, shared, order_calls);
}

ConstraintMatrix build_constraints_dense(
    const Universe& universe, const std::vector<ActionRecord>& records,
    ConstraintBuildStats* stats) {
  ConstraintBuildStats local;
  ConstraintMatrix matrix(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = 0; j < records.size(); ++j) {
      if (i == j) continue;  // diagonal is meaningless; left safe
      ++local.pairs_evaluated;
      ++local.target_set_builds;
      const auto shared =
          common_targets(*records[i].action, *records[j].action);
      matrix.set(ActionId(i), ActionId(j),
                 evaluate_direction(universe, records[i], records[j], shared,
                                    local.order_calls));
    }
  }
  if (stats != nullptr) *stats = local;
  return matrix;
}

ConstraintMatrix build_constraints(const Universe& universe,
                                   const std::vector<ActionRecord>& records,
                                   const ConstraintBuildOptions& options) {
  const std::size_t n = records.size();
  ConstraintMatrix matrix(n);

  // Fetch every action's target list once: Action::targets() is a virtual
  // call returning a fresh vector, far too expensive per pair.
  std::vector<std::vector<ObjectId>> targets(n);
  std::size_t max_target = 0;
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = records[i].action->targets();
    for (ObjectId t : targets[i]) {
      max_target = std::max(max_target, t.index() + 1);
    }
  }

  // Inverted index: target → actions touching it, in ascending id order.
  std::vector<std::vector<std::uint32_t>> by_target(max_target);
  for (std::size_t i = 0; i < n; ++i) {
    for (ObjectId t : targets[i]) {
      by_target[t.index()].push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Unordered pairs sharing at least one target. Every other pair is `safe`
  // in both directions (§2.3 rule 1) — exactly the matrix default.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::vector<std::uint32_t> nbrs;
  for (std::size_t a = 0; a < n; ++a) {
    nbrs.clear();
    for (ObjectId t : targets[a]) {
      for (std::uint32_t b : by_target[t.index()]) {
        if (b > a) nbrs.push_back(b);
      }
    }
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (std::uint32_t b : nbrs) {
      pairs.emplace_back(static_cast<std::uint32_t>(a), b);
    }
  }

  // Evaluate each unordered pair once for both directions, sharded across
  // the pool in contiguous chunks. Chunks write disjoint matrix cells and
  // pair values are independent, so the result (and the stats totals) are
  // identical for any shard count.
  std::atomic<std::uint64_t> order_calls{0};
  const std::size_t lanes =
      options.pool != nullptr ? options.pool->size() + 1 : 1;
  const std::size_t chunk_size =
      std::max<std::size_t>(1, pairs.size() / (lanes * 8) + 1);
  const std::size_t chunks = (pairs.size() + chunk_size - 1) / chunk_size;

  parallel_for_each(
      options.pool, chunks,
      [&universe, &records, &targets, &pairs, &matrix, &order_calls,
       chunk_size](std::size_t c) {
        std::uint64_t local_order_calls = 0;
        std::vector<ObjectId> shared;  // scratch, reused across the chunk
        const std::size_t begin = c * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, pairs.size());
        for (std::size_t p = begin; p < end; ++p) {
          const ActionId a(pairs[p].first);
          const ActionId b(pairs[p].second);
          common_targets_into(targets[a.index()], targets[b.index()], shared);
          matrix.set(a, b,
                     evaluate_direction(universe, records[a.index()],
                                        records[b.index()], shared,
                                        local_order_calls));
          matrix.set(b, a,
                     evaluate_direction(universe, records[b.index()],
                                        records[a.index()], shared,
                                        local_order_calls));
        }
        order_calls.fetch_add(local_order_calls, std::memory_order_relaxed);
      });

  if (options.stats != nullptr) {
    options.stats->pairs_evaluated = 2 * pairs.size();
    options.stats->target_set_builds = pairs.size();
    options.stats->order_calls = order_calls.load(std::memory_order_relaxed);
  }
  return matrix;
}

std::vector<Bitset> build_target_overlap(
    const std::vector<ActionRecord>& records) {
  const std::size_t n = records.size();
  std::vector<Bitset> overlap(n, Bitset(n));

  std::vector<std::vector<ObjectId>> targets(n);
  std::size_t max_target = 0;
  for (std::size_t i = 0; i < n; ++i) {
    targets[i] = records[i].action->targets();
    for (ObjectId t : targets[i]) {
      max_target = std::max(max_target, t.index() + 1);
    }
  }

  std::vector<std::vector<std::uint32_t>> by_target(max_target);
  for (std::size_t i = 0; i < n; ++i) {
    for (ObjectId t : targets[i]) {
      auto& group = by_target[t.index()];
      // An action listing a target twice must appear in the group once
      // (overlap is a relation between *distinct* actions).
      if (group.empty() || group.back() != i) {
        group.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  for (const auto& group : by_target) {
    for (std::size_t x = 0; x < group.size(); ++x) {
      for (std::size_t y = x + 1; y < group.size(); ++y) {
        if (group[x] == group[y]) continue;
        overlap[group[x]].set(group[y]);
        overlap[group[y]].set(group[x]);
      }
    }
  }
  return overlap;
}

std::string render_matrix(const ConstraintMatrix& matrix,
                          const std::vector<std::string>& labels) {
  std::size_t width = 6;  // at least "unsafe"
  for (const auto& l : labels) width = std::max(width, l.size());
  width += 2;

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(width)) << "a \\ b";
  for (const auto& l : labels) {
    os << std::setw(static_cast<int>(width)) << l;
  }
  os << '\n';
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    os << std::setw(static_cast<int>(width)) << labels[i];
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      if (i == j) {
        os << std::setw(static_cast<int>(width)) << "-";
      } else {
        os << std::setw(static_cast<int>(width))
           << to_string(matrix.at(ActionId(i), ActionId(j)));
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace icecube
