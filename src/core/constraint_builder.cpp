#include "core/constraint_builder.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace icecube {

namespace {

/// Common targets of two actions (both vectors are tiny; quadratic scan).
std::vector<ObjectId> common_targets(const Action& a, const Action& b) {
  std::vector<ObjectId> out;
  const auto ta = a.targets();
  const auto tb = b.targets();
  for (ObjectId x : ta) {
    if (std::find(tb.begin(), tb.end(), x) != tb.end() &&
        std::find(out.begin(), out.end(), x) == out.end()) {
      out.push_back(x);
    }
  }
  return out;
}

}  // namespace

Constraint evaluate_constraint(const Universe& universe, const ActionRecord& a,
                               const ActionRecord& b) {
  const auto shared = common_targets(*a.action, *b.action);
  // Rule 1: disjoint targets ⇒ independent and commutative.
  if (shared.empty()) return Constraint::kSafe;
  // Rule 2: the recorded order of a log is safe by default (user intent).
  if (a.before_in_log(b)) return Constraint::kSafe;
  // Rule 3: ask each common target's order method; keep the most
  // constraining answer.
  const LogRelation rel =
      a.same_log(b) ? LogRelation::kSameLog : LogRelation::kAcrossLogs;
  Constraint result = Constraint::kSafe;
  for (ObjectId target : shared) {
    result = most_constraining(
        result, universe.at(target).order(*a.action, *b.action, rel));
    if (result == Constraint::kUnsafe) break;  // cannot get worse
  }
  return result;
}

ConstraintMatrix build_constraints(const Universe& universe,
                                   const std::vector<ActionRecord>& records) {
  ConstraintMatrix matrix(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = 0; j < records.size(); ++j) {
      if (i == j) continue;  // diagonal is meaningless; left safe
      matrix.set(ActionId(i), ActionId(j),
                 evaluate_constraint(universe, records[i], records[j]));
    }
  }
  return matrix;
}

std::string render_matrix(const ConstraintMatrix& matrix,
                          const std::vector<std::string>& labels) {
  std::size_t width = 6;  // at least "unsafe"
  for (const auto& l : labels) width = std::max(width, l.size());
  width += 2;

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(width)) << "a \\ b";
  for (const auto& l : labels) {
    os << std::setw(static_cast<int>(width)) << l;
  }
  os << '\n';
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    os << std::setw(static_cast<int>(width)) << labels[i];
    for (std::size_t j = 0; j < matrix.size(); ++j) {
      if (i == j) {
        os << std::setw(static_cast<int>(width)) << "-";
      } else {
        os << std::setw(static_cast<int>(width))
           << to_string(matrix.at(ActionId(i), ActionId(j)));
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace icecube
