// Pipelined / anytime reconciliation (§2).
//
// The paper presents the three stages as sequential "to simplify
// exposition" but notes that "in fact they run in a pipeline with various
// feedback loops, in order to provide better interactivity and faster
// response". This facade exposes that mode: the search runs in bounded
// slices, and between slices the application can read the incumbent best
// outcome (e.g. to give the user immediate feedback, as §4.3 suggests for
// the H=All run that finds its optimum after two sequences), adjust its
// policy, or stop early and keep what was found.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/reconciler.hpp"
#include "core/relations.hpp"
#include "core/selection.hpp"
#include "core/simulator.hpp"
#include "core/universe.hpp"
#include "solver/graph.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Streaming-side constraint maintenance (DESIGN.md §15): the sparse
/// target-inverted constraint graph of `build_solver_graph`, extended one
/// action at a time. Each arrival evaluates only its pairs against
/// already-known actions sharing a target — amortised O(overlap) per
/// action, never touching the Θ(n²) matrix — and the resulting adjacency
/// lists are element-for-element identical to a batch build over the same
/// record sequence.
///
/// Alongside the graph it maintains the conflict-component partition
/// (union–find, merged small-into-large) and a dirty set: the components
/// touched by arrivals since the last `take_dirty_roots()`. The daemon
/// re-solves exactly those.
///
/// Ids are assigned in arrival order; the canonical cross-replica identity
/// of a record is its stream priority (solver/components.hpp), not its id.
class IncrementalConstraintGraph {
 public:
  /// `universe` supplies the `order` methods and the object-id space; it
  /// must outlive the graph. Actions may only target objects that already
  /// exist in it.
  explicit IncrementalConstraintGraph(const Universe& universe);

  /// Appends one action and extends the graph. Returns the new id.
  ActionId add_action(ActionPtr action, LogId log, std::size_t position);

  [[nodiscard]] const std::vector<ActionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const SolverGraph& graph() const { return graph_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Pair-evaluation work counters, comparable with the batch builder's.
  [[nodiscard]] const ConstraintBuildStats& build_stats() const {
    return stats_;
  }

  /// Union–find root of `id`'s component (path-halving; cheap).
  [[nodiscard]] ActionId component_root(ActionId id);
  /// Members (unsorted) of the component rooted at `root`, materialised
  /// from the intrusive member chain into an internal scratch vector;
  /// valid until the next call or add_action.
  [[nodiscard]] const std::vector<ActionId>& component_members(ActionId root);
  [[nodiscard]] std::size_t component_count() const { return components_; }

  /// Current roots of every component touched since the last call
  /// (deduplicated, in ascending root id); clears the dirty set.
  [[nodiscard]] std::vector<ActionId> take_dirty_roots();

 private:
  static constexpr std::uint32_t kNoMember = 0xffffffffU;

  [[nodiscard]] std::uint32_t find(std::uint32_t v);
  void unite(std::uint32_t a, std::uint32_t b);

  const Universe* universe_;
  std::vector<ActionRecord> records_;
  SolverGraph graph_;
  ConstraintBuildStats stats_;

  /// Target → action ids, the inverted index arrivals probe.
  std::vector<std::vector<ActionId>> by_target_;
  /// Per-existing-action stamp deduplicating multi-target pairs within one
  /// add_action call (value = new id + 1).
  std::vector<std::uint32_t> paired_stamp_;
  /// Scratch for one add_action call: the deduplicated partners, the slot
  /// each partner's shared-target set lives in (valid where the stamp
  /// matches), and a pool of shared-target vectors whose capacity is reused
  /// across arrivals.
  std::vector<ActionId> pair_others_;
  std::vector<std::uint32_t> pair_slot_;
  std::vector<std::vector<ObjectId>> pair_targets_pool_;

  std::vector<std::uint32_t> parent_;
  /// Component membership as an intrusive singly-linked chain per root
  /// (head/tail/size valid at roots only, next per id): unite splices in
  /// O(1) with zero allocation, where vector-of-vectors merging cost one
  /// heap singleton per arrival plus a copy per union.
  std::vector<std::uint32_t> member_head_;
  std::vector<std::uint32_t> member_tail_;
  std::vector<std::uint32_t> member_next_;  ///< kNoMember ends a chain
  std::vector<std::uint32_t> comp_size_;
  std::vector<ActionId> members_scratch_;  ///< component_members() output
  std::size_t components_ = 0;
  std::vector<std::uint32_t> dirty_roots_;  ///< raw, pre-find, may repeat
};

/// Single-shot, sliceable reconciliation. Construct, call `step()` until
/// `finished()`, then `take_result()` — or stop at any time and take what
/// has been found so far.
class IncrementalReconciler {
 public:
  IncrementalReconciler(Universe initial, std::vector<Log> logs,
                        ReconcilerOptions options = {},
                        Policy* policy = nullptr);
  ~IncrementalReconciler();

  IncrementalReconciler(const IncrementalReconciler&) = delete;
  IncrementalReconciler& operator=(const IncrementalReconciler&) = delete;

  /// Snapshot of search progress returned by `step`.
  struct Progress {
    std::uint64_t schedules_explored = 0;  ///< cumulative terminal nodes
    bool finished = false;                 ///< nothing left to explore
    bool has_best = false;                 ///< an incumbent outcome exists
    double best_cost = 0.0;                ///< cost of the incumbent
    std::size_t cutsets_remaining = 0;     ///< sub-searches not yet started
  };

  /// Explores up to `schedule_budget` further schedules and returns the
  /// updated progress. Calling after completion is a no-op.
  Progress step(std::uint64_t schedule_budget);

  [[nodiscard]] bool finished() const;
  /// The incumbent best outcome; valid only when progress reports has_best.
  [[nodiscard]] const Outcome& best() const { return selection_.best(); }
  [[nodiscard]] const SearchStats& stats() const { return stats_; }

  /// Stops the search (if still running) and returns everything found.
  /// The reconciler is spent afterwards.
  [[nodiscard]] ReconcileResult take_result();

  [[nodiscard]] const Relations& relations() const { return relations_; }
  [[nodiscard]] const std::vector<ActionRecord>& records() const {
    return records_;
  }

 private:
  [[nodiscard]] Progress progress() const;
  /// Advances to the next cutset's search; false when none remain.
  bool open_next_cutset();

  Universe initial_;
  std::vector<Log> logs_;
  ReconcilerOptions options_;
  Policy* policy_;
  std::unique_ptr<Policy> default_policy_;

  std::vector<ActionRecord> records_;
  ConstraintMatrix matrix_;
  Relations relations_;
  /// Shared §6 overlap index (see build_target_overlap); built once, handed
  /// to every cutset's simulator. Empty when memoization is off.
  std::vector<Bitset> target_overlap_;

  std::vector<Cutset> cutsets_;
  std::size_t next_cutset_ = 0;
  Relations working_;  ///< cutset-restricted relations the simulator reads

  Stopwatch clock_;
  Deadline deadline_;
  SearchStats stats_;
  Selection selection_;
  std::optional<Simulator> simulator_;
  bool done_ = false;
};

}  // namespace icecube
