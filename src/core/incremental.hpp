// Pipelined / anytime reconciliation (§2).
//
// The paper presents the three stages as sequential "to simplify
// exposition" but notes that "in fact they run in a pipeline with various
// feedback loops, in order to provide better interactivity and faster
// response". This facade exposes that mode: the search runs in bounded
// slices, and between slices the application can read the incumbent best
// outcome (e.g. to give the user immediate feedback, as §4.3 suggests for
// the H=All run that finds its optimum after two sequences), adjust its
// policy, or stop early and keep what was found.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/options.hpp"
#include "core/outcome.hpp"
#include "core/policy.hpp"
#include "core/reconciler.hpp"
#include "core/relations.hpp"
#include "core/selection.hpp"
#include "core/simulator.hpp"
#include "core/universe.hpp"
#include "util/timer.hpp"

namespace icecube {

/// Single-shot, sliceable reconciliation. Construct, call `step()` until
/// `finished()`, then `take_result()` — or stop at any time and take what
/// has been found so far.
class IncrementalReconciler {
 public:
  IncrementalReconciler(Universe initial, std::vector<Log> logs,
                        ReconcilerOptions options = {},
                        Policy* policy = nullptr);
  ~IncrementalReconciler();

  IncrementalReconciler(const IncrementalReconciler&) = delete;
  IncrementalReconciler& operator=(const IncrementalReconciler&) = delete;

  /// Snapshot of search progress returned by `step`.
  struct Progress {
    std::uint64_t schedules_explored = 0;  ///< cumulative terminal nodes
    bool finished = false;                 ///< nothing left to explore
    bool has_best = false;                 ///< an incumbent outcome exists
    double best_cost = 0.0;                ///< cost of the incumbent
    std::size_t cutsets_remaining = 0;     ///< sub-searches not yet started
  };

  /// Explores up to `schedule_budget` further schedules and returns the
  /// updated progress. Calling after completion is a no-op.
  Progress step(std::uint64_t schedule_budget);

  [[nodiscard]] bool finished() const;
  /// The incumbent best outcome; valid only when progress reports has_best.
  [[nodiscard]] const Outcome& best() const { return selection_.best(); }
  [[nodiscard]] const SearchStats& stats() const { return stats_; }

  /// Stops the search (if still running) and returns everything found.
  /// The reconciler is spent afterwards.
  [[nodiscard]] ReconcileResult take_result();

  [[nodiscard]] const Relations& relations() const { return relations_; }
  [[nodiscard]] const std::vector<ActionRecord>& records() const {
    return records_;
  }

 private:
  [[nodiscard]] Progress progress() const;
  /// Advances to the next cutset's search; false when none remain.
  bool open_next_cutset();

  Universe initial_;
  std::vector<Log> logs_;
  ReconcilerOptions options_;
  Policy* policy_;
  std::unique_ptr<Policy> default_policy_;

  std::vector<ActionRecord> records_;
  ConstraintMatrix matrix_;
  Relations relations_;
  /// Shared §6 overlap index (see build_target_overlap); built once, handed
  /// to every cutset's simulator. Empty when memoization is off.
  std::vector<Bitset> target_overlap_;

  std::vector<Cutset> cutsets_;
  std::size_t next_cutset_ = 0;
  Relations working_;  ///< cutset-restricted relations the simulator reads

  Stopwatch clock_;
  Deadline deadline_;
  SearchStats stats_;
  Selection selection_;
  std::optional<Simulator> simulator_;
  bool done_ = false;
};

}  // namespace icecube
