// Graphviz (DOT) export of the static-analysis artefacts.
//
// Reconciliation decisions are graph-shaped: which pairs conflict, what D
// chains force, where the cycles sit. These helpers render them for
// debugging, documentation and demos:
//
//   dot -Tsvg constraints.dot -o constraints.svg
#pragma once

#include <string>
#include <vector>

#include "core/constraint_builder.hpp"
#include "core/cutset.hpp"
#include "core/log.hpp"
#include "core/relations.hpp"

namespace icecube {

/// Renders the D and I relations over `records`: one node per action
/// (labelled "log:pos op"), solid edges for raw dependences (a must precede
/// b), dashed edges for independences (a I b). Cut vertices, if any, are
/// drawn filled.
[[nodiscard]] std::string to_dot(const std::vector<ActionRecord>& records,
                                 const Relations& relations,
                                 const Cutset& cutset = {});

/// Renders the raw constraint matrix: red edges for unsafe pairs, green for
/// safe, maybes omitted (they carry no static information).
[[nodiscard]] std::string to_dot(const std::vector<ActionRecord>& records,
                                 const ConstraintMatrix& matrix);

}  // namespace icecube
