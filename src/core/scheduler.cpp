#include "core/scheduler.hpp"

#include <cassert>

namespace icecube {

CandidateScheduler::CandidateScheduler(const Relations& relations,
                                       Heuristic heuristic, BRule b_rule,
                                       Bitset excluded, bool prune_equivalent)
    : relations_(relations),
      heuristic_(heuristic),
      b_rule_(b_rule),
      excluded_(std::move(excluded)),
      prune_equivalent_(prune_equivalent) {
  assert(excluded_.size() == relations_.size());
}

Bitset CandidateScheduler::eligible(
    const Bitset& done,
    const std::vector<std::pair<ActionId, ActionId>>& extra_deps) const {
  const std::size_t n = relations_.size();
  Bitset s(n);
  for (std::size_t b = 0; b < n; ++b) {
    if (done.test(b)) continue;
    // Every D-predecessor must already be accounted for (scheduled, skipped
    // or excluded — `done` contains all three).
    Bitset pending = relations_.predecessors(ActionId(b));
    pending -= done;
    pending.reset(b);  // ignore formal reflexivity
    if (pending.any()) continue;
    s.set(b);
  }
  for (const auto& [a, b] : extra_deps) {
    if (!done.test(a.index()) && a != b) s.reset(b.index());
  }
  return s;
}

std::vector<ActionId> CandidateScheduler::successors(
    const Bitset& done, ActionId last,
    const std::vector<std::pair<ActionId, ActionId>>& extra_deps,
    Rng* rng) const {
  const Bitset s = eligible(done, extra_deps);

  // C: eligible actions that I-follow the last scheduled action.
  Bitset c(relations_.size());
  if (last.valid()) {
    c = relations_.independents_of(last);
    c &= s;
  }

  Bitset chosen(relations_.size());
  switch (heuristic_) {
    case Heuristic::kAll:
      chosen = s;
      break;
    case Heuristic::kSafe:
      chosen = c.any() ? c : s;
      break;
    case Heuristic::kStrict: {
      if (c.any()) {
        // "picks one action in C arbitrarily and tries only this action"
        const auto members = c.to_vector();
        const std::size_t pick =
            (rng != nullptr) ? rng->below(members.size()) : 0;
        chosen.set(members[pick]);
      } else {
        // S − B, where B holds the eligible actions that still have an
        // available I-predecessor (BRule::kLookahead; see DESIGN.md §5.2 —
        // the literal reading quantifies over the empty C and removes
        // nothing).
        chosen = s;
        if (b_rule_ == BRule::kLookahead) {
          Bitset b_set(relations_.size());
          s.for_each([&](std::size_t b) {
            Bitset preds = relations_.independent_predecessors_of(ActionId(b));
            preds &= s;
            preds.reset(b);
            if (preds.any()) b_set.set(b);
          });
          // Never prune S to nothing: if every eligible action has an
          // available I-predecessor, fall back to S (otherwise the search
          // would dead-end while work remains, losing completeness for no
          // heuristic gain).
          if (b_set != s) chosen -= b_set;
        }
      }
      break;
    }
  }

  // Static-equivalence pruning: placing c right after `last` when the two
  // fully commute (safe in both directions) and c has the smaller id would
  // create an adjacent commuting inversion; the transposed schedule (c
  // first) reaches the same state and is explored elsewhere, so this
  // representative is redundant. Because the pair has no D edge, c was
  // already eligible before `last` was placed — unless a prefix-conditional
  // extra dependency blocked it, which is why the pruning is disabled when
  // any are active.
  if (prune_equivalent_ && last.valid() && extra_deps.empty()) {
    chosen.for_each([&](std::size_t c) {
      if (ActionId(c) < last &&
          relations_.independent(last, ActionId(c)) &&
          relations_.independent(ActionId(c), last)) {
        chosen.reset(c);
      }
    });
  }

  std::vector<ActionId> out;
  out.reserve(chosen.count());
  chosen.for_each([&out](std::size_t i) { out.push_back(ActionId(i)); });
  return out;
}

}  // namespace icecube
