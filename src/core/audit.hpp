// Introspection hook for the constraint soundness auditor (src/analysis).
//
// The static constraint relation (§2.3) is only useful if every object
// type's `order` method is *honest* about the dynamic preconditions it
// summarises: `safe` promises "a immediately followed by b is likely
// failure-free" and `unsafe` forces `b D a`. The auditor checks those
// promises against the real simulator, but it can only do so for types it
// knows how to instantiate and exercise — which is what an `AuditSubject`
// provides: a fresh universe holding the type and a deterministic sampler
// of plausible actions against it.
//
// The struct lives in core (below both src/objects and src/jigsaw) so any
// substrate can describe itself without depending on the analysis library.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/universe.hpp"
#include "util/rng.hpp"

namespace icecube {

/// One auditable shared-object type. `make_universe` returns the type's
/// canonical initial state (the auditor derives further reachable states by
/// executing sampled action prefixes); `sample_action` draws one action
/// whose targets are valid in that universe. Both must be deterministic in
/// the rng draw so audit findings are reproducible from a seed.
struct AuditSubject {
  std::string name;
  std::function<Universe()> make_universe;
  std::function<ActionPtr(const Universe&, Rng&)> sample_action;
};

}  // namespace icecube
