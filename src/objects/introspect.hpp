// Audit subjects for the shipped object types (see core/audit.hpp).
//
// Each subject pairs a canonical initial universe with a deterministic
// action sampler whose tag parameters deliberately straddle the type's
// dynamic constraints (amounts around the counter balance, paths inside and
// outside deleted subtrees, ...) so the auditor's sampled states actually
// exercise the failure boundaries the `order` methods summarise.
#pragma once

#include <vector>

#include "core/audit.hpp"

namespace icecube {

/// Subjects for the object types under src/objects: counter, rw_register,
/// calendar, line_file, file_system, text and sysadmin (OS + budget).
[[nodiscard]] std::vector<AuditSubject> object_audit_subjects();

}  // namespace icecube
