#include "objects/line_file.hpp"

namespace icecube {

Constraint LineFile::order(const Action& a, const Action& b,
                           LogRelation rel) const {
  const bool same_line = a.tag().param(0) == b.tag().param(0);
  if (rel == LogRelation::kSameLog) {
    // Within one editing session, re-edits of the same line must keep their
    // order (each edit's precondition pins its predecessor's output);
    // different lines commute.
    return same_line ? Constraint::kUnsafe : Constraint::kSafe;
  }
  // Across sessions: the CVS rule. Different lines never conflict; the same
  // line is a potential conflict left to the dynamic stage (the loser's
  // precondition fails and the user is notified).
  return same_line ? Constraint::kMaybe : Constraint::kSafe;
}

}  // namespace icecube
