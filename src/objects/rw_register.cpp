#include "objects/rw_register.hpp"

namespace icecube {

Constraint RwRegister::order(const Action& a, const Action& b,
                             LogRelation rel) const {
  const bool a_write = a.tag().op == "write";
  const bool b_write = b.tag().op == "write";

  if (rel == LogRelation::kSameLog) {
    // Figure 4: reads commute, writes commute, read/write never swaps.
    if (a_write == b_write) return Constraint::kSafe;
    return Constraint::kUnsafe;
  }
  // Figure 2 (across logs).
  if (!a_write && !b_write) return Constraint::kSafe;   // read before read
  if (!a_write && b_write) return Constraint::kSafe;    // read before write
  if (a_write && !b_write) return Constraint::kUnsafe;  // write before read
  return Constraint::kMaybe;                            // write before write
}

}  // namespace icecube
