#include "objects/text.hpp"

#include <algorithm>
#include <cassert>

namespace icecube {

TransformedEdit lift(const TextEdit& e) {
  TransformedEdit t;
  t.kind = e.kind;
  t.site = e.site;
  if (e.kind == TextEdit::Kind::kInsert) {
    t.pos = e.pos;
    t.text = e.text;
  } else if (e.len > 0) {
    t.ranges.emplace_back(e.pos, e.pos + e.len);
  }
  return t;
}

namespace {

void transform_against_insert(TransformedEdit& e, std::size_t p2,
                              std::size_t l2, int site2) {
  if (e.kind == TextEdit::Kind::kInsert) {
    // Ties at the same position are broken by site id, so that both
    // relative orders of two concurrent inserts converge (TP1).
    if (e.pos > p2 || (e.pos == p2 && e.site > site2)) e.pos += l2;
    return;
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(e.ranges.size() + 1);
  for (auto [s, t] : e.ranges) {
    if (p2 <= s) {
      out.emplace_back(s + l2, t + l2);
    } else if (p2 < t) {
      // The concurrent insert landed inside our deletion range: split the
      // range around it rather than deleting the new text.
      out.emplace_back(s, p2);
      out.emplace_back(p2 + l2, t + l2);
    } else {
      out.emplace_back(s, t);
    }
  }
  e.ranges = std::move(out);
}

void transform_against_delete(TransformedEdit& e, std::size_t p2,
                              std::size_t l2) {
  const auto shift = [p2, l2](std::size_t x) {
    if (x <= p2) return x;
    if (x >= p2 + l2) return x - l2;
    return p2;  // inside the deleted region: collapse to its start
  };
  if (e.kind == TextEdit::Kind::kInsert) {
    e.pos = shift(e.pos);
    return;
  }
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(e.ranges.size());
  for (auto [s, t] : e.ranges) {
    const std::size_t ns = shift(s);
    const std::size_t nt = shift(t);
    if (ns < nt) out.emplace_back(ns, nt);  // drop fully-deleted ranges
  }
  e.ranges = std::move(out);
}

}  // namespace

void include_transform(TransformedEdit& e, const TextEdit& applied) {
  if (applied.kind == TextEdit::Kind::kInsert) {
    transform_against_insert(e, applied.pos, applied.text.size(),
                             applied.site);
  } else {
    transform_against_delete(e, applied.pos, applied.len);
  }
}

bool TextBuffer::apply(const TextEdit& edit) {
  TransformedEdit t = lift(edit);
  // Include-transform against the concurrent edits already applied: entries
  // from other sites. Own-site entries are the edit's generation context
  // and must not shift it. (Exact when schedules chain whole logs — which
  // the safe cross-log ordering produces — approximate for fine
  // interleavings; see the header.)
  for (const TextEdit& h : history_) {
    if (h.site != edit.site) include_transform(t, h);
  }

  if (t.kind == TextEdit::Kind::kInsert) {
    if (t.pos > text_.size()) return false;
    text_.insert(t.pos, t.text);
    history_.push_back(TextEdit::insert(t.site, t.pos, t.text));
    return true;
  }

  // Validate every range, then erase from the highest down so earlier
  // ranges' coordinates stay valid; record each as applied.
  for (auto [s, e] : t.ranges) {
    if (e > text_.size() || s > e) return false;
  }
  std::sort(t.ranges.begin(), t.ranges.end(),
            [](auto a, auto b) { return a.first > b.first; });
  for (auto [s, e] : t.ranges) {
    text_.erase(s, e - s);
    history_.push_back(TextEdit::remove(t.site, s, e - s));
  }
  // A delete whose target text was already removed is a satisfied no-op.
  return true;
}

Constraint TextBuffer::order(const Action& a, const Action& b,
                             LogRelation rel) const {
  if (rel == LogRelation::kSameLog) {
    // Positions within a log refer to the session's own evolving text;
    // never reorder them.
    return Constraint::kUnsafe;
  }
  // Transformation makes *concurrent* — different-site — edits commute:
  // either order converges. Same-site edits are each other's generation
  // context and are deliberately never transformed against one another (see
  // apply()), so a cross-log pairing of them gets no such protection: a
  // delete can shrink the buffer out from under a later same-site edit's
  // coordinates (auditor witness: "hel world", tdel(2,1,2) then tins(2,8,…)
  // fails where the insert alone succeeds). Leave those to the dynamic
  // check.
  if (a.tag().param(0) == b.tag().param(0)) return Constraint::kMaybe;
  return Constraint::kSafe;
}

}  // namespace icecube
