// System-administration substrate (§2, first motivating example).
//
// Two shared objects: the operating system (version, owned devices,
// installed drivers) and the expense budget (a non-negative balance whose
// order method understands both plain funding increments and device
// purchases). The example's expected solution is A3, B1, B2, A1, A2: the
// reconciler must discover the cross-log dependency "install printer driver
// (v4) before the OS upgrade" and the in-log independency "the budget
// increase may run before the purchases".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/action.hpp"
#include "core/log.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Operating system state: version, purchased devices, installed drivers
/// (device → driver version). Upgrading the OS auto-upgrades all installed
/// drivers, as in the paper's story.
class OsSystem final : public SharedObject {
 public:
  explicit OsSystem(int version) : version_(version) {}

  [[nodiscard]] int version() const { return version_; }
  [[nodiscard]] bool owns(int device) const { return devices_.contains(device); }
  [[nodiscard]] bool driver_installed(int device) const {
    return drivers_.contains(device);
  }
  [[nodiscard]] int driver_version(int device) const {
    return drivers_.at(device);
  }
  [[nodiscard]] const std::set<int>& devices() const { return devices_; }
  [[nodiscard]] const std::map<int, int>& drivers() const { return drivers_; }

  void buy(int device) { devices_.insert(device); }
  void install_driver(int device, int version) { drivers_[device] = version; }
  void upgrade(int to) {
    version_ = to;
    for (auto& [device, v] : drivers_) v = to;  // drivers auto-upgraded
  }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<OsSystem>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(OsSystem) + devices_.size() * sizeof(int) +
           drivers_.size() * 2 * sizeof(int);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  int version_;
  std::set<int> devices_;
  std::map<int, int> drivers_;
};

/// Expense budget; invariant: balance >= 0. Its order method follows the
/// counter tables (Figures 3/5) with "fund" as the increment and "buy" as
/// the decrement.
class SysBudget final : public SharedObject {
 public:
  explicit SysBudget(std::int64_t balance) : balance_(balance) {}

  [[nodiscard]] std::int64_t balance() const { return balance_; }
  bool spend(std::int64_t amount) {
    if (balance_ < amount) return false;
    balance_ -= amount;
    return true;
  }
  void fund(std::int64_t amount) { balance_ += amount; }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<SysBudget>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(SysBudget);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "budget=" + std::to_string(balance_);
  }

 private:
  std::int64_t balance_;
};

/// Upgrade the OS from `from` to `to`; all installed drivers follow.
class UpgradeOsAction final : public SimpleAction {
 public:
  UpgradeOsAction(ObjectId os, int from, int to)
      : SimpleAction(Tag("upgrade", {from, to}), {os}),
        os_(os),
        from_(from),
        to_(to) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId os_;
  int from_;
  int to_;
};

/// Purchase a device: debits the budget and records ownership.
class BuyDeviceAction final : public SimpleAction {
 public:
  BuyDeviceAction(ObjectId os, ObjectId budget, int device, std::int64_t cost)
      : SimpleAction(Tag("buy", {device, cost}), {os, budget}),
        os_(os),
        budget_(budget),
        device_(device),
        cost_(cost) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId os_;
  ObjectId budget_;
  int device_;
  std::int64_t cost_;
};

/// Install the driver for an owned device; the driver version must match
/// the running OS version.
class InstallDriverAction final : public SimpleAction {
 public:
  InstallDriverAction(ObjectId os, int device, int driver_version)
      : SimpleAction(Tag("install", {device, driver_version}), {os}),
        os_(os),
        device_(device),
        driver_version_(driver_version) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId os_;
  int device_;
  int driver_version_;
};

/// Obtain a budget increase.
class FundBudgetAction final : public SimpleAction {
 public:
  FundBudgetAction(ObjectId budget, std::int64_t amount)
      : SimpleAction(Tag("fund", {amount}), {budget}),
        budget_(budget),
        amount_(amount) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe& u) const override;

 private:
  ObjectId budget_;
  std::int64_t amount_;
};

/// The paper's example, ready to reconcile: OS at v4, budget £1000,
/// log A = [upgrade v4→v5, buy tape £800, fund £1500] and
/// log B = [buy printer £400, install printer driver v4].
struct SysAdminExample {
  Universe initial;
  ObjectId os;
  ObjectId budget;
  std::vector<Log> logs;

  static constexpr int kTapeDrive = 1;
  static constexpr int kPrinter = 2;
};

[[nodiscard]] SysAdminExample make_sysadmin_example();

}  // namespace icecube
