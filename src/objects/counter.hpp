// Non-negative counter: a bank account or budget (§2.4, Figures 3 and 5).
//
// Semantics: increments and decrements instead of reads and writes; the
// value may never go negative (an object invariant enforced dynamically).
// Order-method rationale, from the paper: "orders increments before
// decrements; increments commute with one another, and decrements commute
// with one another subject to the dynamic constraint that the budget not
// become negative."
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Budget/bank-account integer; invariant: value >= 0.
class Counter final : public SharedObject {
 public:
  explicit Counter(std::int64_t initial = 0) : value_(initial) {}

  [[nodiscard]] std::int64_t value() const { return value_; }

  /// Applies a delta; returns false (and leaves the value unchanged) if the
  /// result would violate the non-negativity invariant.
  bool apply(std::int64_t delta) {
    if (value_ + delta < 0) return false;
    value_ += delta;
    return true;
  }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<Counter>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(Counter);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "counter=" + std::to_string(value_);
  }

 private:
  std::int64_t value_;
};

/// Adds `amount` (>= 0) to the counter. Tag: increment(amount).
class IncrementAction final : public SimpleAction {
 public:
  IncrementAction(ObjectId counter, std::int64_t amount)
      : SimpleAction(Tag("increment", {amount}), {counter}),
        counter_(counter),
        amount_(amount) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe& u) const override {
    return u.as<Counter>(counter_).apply(amount_);
  }

 private:
  ObjectId counter_;
  std::int64_t amount_;
};

/// Subtracts `amount` (>= 0); both the precondition and the post-condition
/// guard the invariant — the dynamic constraint of Figure 3's `maybe`.
class DecrementAction final : public SimpleAction {
 public:
  DecrementAction(ObjectId counter, std::int64_t amount)
      : SimpleAction(Tag("decrement", {amount}), {counter}),
        counter_(counter),
        amount_(amount) {}

  [[nodiscard]] bool precondition(const Universe& u) const override {
    return u.as<Counter>(counter_).value() >= amount_;
  }
  bool execute(Universe& u) const override {
    return u.as<Counter>(counter_).apply(-amount_);
  }

 private:
  ObjectId counter_;
  std::int64_t amount_;
};

}  // namespace icecube
