#include "objects/sysadmin.hpp"

#include <sstream>

namespace icecube {

Constraint OsSystem::order(const Action& a, const Action& b,
                           LogRelation rel) const {
  const Tag& ta = a.tag();
  const Tag& tb = b.tag();

  // upgrade(from, to) vs install(device, driver_version)
  if (ta.op == "install" && tb.op == "upgrade") {
    const auto v = ta.param(1);
    if (v == tb.param(0)) return Constraint::kSafe;    // install, then upgrade
    if (v == tb.param(1)) return Constraint::kUnsafe;  // needs the upgrade 1st
    return Constraint::kMaybe;
  }
  if (ta.op == "upgrade" && tb.op == "install") {
    const auto v = tb.param(1);
    if (v == ta.param(0)) return Constraint::kUnsafe;  // upgrade breaks it
    if (v == ta.param(1)) return Constraint::kSafe;    // upgrade enables it
    return Constraint::kMaybe;
  }
  if (ta.op == "upgrade" && tb.op == "upgrade") {
    if (ta.param(1) == tb.param(0)) return Constraint::kSafe;  // chains a→b
    return Constraint::kUnsafe;  // reversed chain or same source version
  }
  // buy(device, cost) vs install(device, version): ownership first.
  if (ta.op == "buy" && tb.op == "install") {
    return Constraint::kSafe;  // buying never hurts a later install
  }
  if (ta.op == "install" && tb.op == "buy") {
    if (ta.param(0) == tb.param(0)) return Constraint::kUnsafe;
    return Constraint::kSafe;
  }
  if (ta.op == "buy" && tb.op == "buy") {
    // Buying the same device twice can never both succeed.
    return ta.param(0) == tb.param(0) ? Constraint::kUnsafe
                                      : Constraint::kSafe;
  }
  // upgrade vs buy (and anything unanticipated): independent of version.
  (void)rel;
  return Constraint::kSafe;
}

std::string OsSystem::describe() const {
  std::ostringstream os;
  os << "os{v" << version_ << ", devices=" << devices_.size()
     << ", drivers=" << drivers_.size() << "}";
  return os.str();
}

Constraint SysBudget::order(const Action& a, const Action& b,
                            LogRelation rel) const {
  // Figures 3/5 with fund=increment, buy=decrement.
  const bool a_spend = a.tag().op == "buy";
  const bool b_spend = b.tag().op == "buy";
  if (rel == LogRelation::kSameLog) {
    if (a_spend && !b_spend) return Constraint::kUnsafe;
    return Constraint::kSafe;
  }
  // Across logs any spend-headed pair is budget-dependent — including
  // buy/buy, where two purchases that each fit the balance alone can
  // jointly overdraw it (balance=1000: buy(800) then buy(400) fails where
  // buy(400) alone succeeds).
  if (a_spend) return Constraint::kMaybe;
  return Constraint::kSafe;
}

bool UpgradeOsAction::precondition(const Universe& u) const {
  return u.as<OsSystem>(os_).version() == from_;
}
bool UpgradeOsAction::execute(Universe& u) const {
  u.as<OsSystem>(os_).upgrade(to_);
  return true;
}

bool BuyDeviceAction::precondition(const Universe& u) const {
  return !u.as<OsSystem>(os_).owns(device_) &&
         u.as<SysBudget>(budget_).balance() >= cost_;
}
bool BuyDeviceAction::execute(Universe& u) const {
  if (!u.as<SysBudget>(budget_).spend(cost_)) return false;
  u.as<OsSystem>(os_).buy(device_);
  return true;
}

bool InstallDriverAction::precondition(const Universe& u) const {
  const auto& os = u.as<OsSystem>(os_);
  return os.owns(device_) && os.version() == driver_version_;
}
bool InstallDriverAction::execute(Universe& u) const {
  u.as<OsSystem>(os_).install_driver(device_, driver_version_);
  return true;
}

bool FundBudgetAction::execute(Universe& u) const {
  u.as<SysBudget>(budget_).fund(amount_);
  return true;
}

SysAdminExample make_sysadmin_example() {
  SysAdminExample ex;
  ex.os = ex.initial.add(std::make_unique<OsSystem>(4));
  ex.budget = ex.initial.add(std::make_unique<SysBudget>(1000));

  Log log_a("A");
  log_a.append(std::make_shared<UpgradeOsAction>(ex.os, 4, 5));  // A1
  log_a.append(std::make_shared<BuyDeviceAction>(
      ex.os, ex.budget, SysAdminExample::kTapeDrive, 800));      // A2
  log_a.append(std::make_shared<FundBudgetAction>(ex.budget, 1500));  // A3

  Log log_b("B");
  log_b.append(std::make_shared<BuyDeviceAction>(
      ex.os, ex.budget, SysAdminExample::kPrinter, 400));  // B1
  log_b.append(std::make_shared<InstallDriverAction>(
      ex.os, SysAdminExample::kPrinter, 4));  // B2

  ex.logs = {std::move(log_a), std::move(log_b)};
  return ex;
}

}  // namespace icecube
