#include "objects/calendar.hpp"

#include <sstream>

namespace icecube {

Constraint Calendar::order(const Action& a, const Action& b,
                           LogRelation rel) const {
  const Tag& ta = a.tag();
  const Tag& tb = b.tag();
  const bool a_cancel = ta.op == "cancel";
  const bool b_cancel = tb.op == "cancel";

  if (a_cancel && b_cancel) {
    // Same slot twice can never both succeed; distinct slots commute.
    return ta.param(0) == tb.param(0) ? Constraint::kUnsafe
                                      : Constraint::kSafe;
  }
  if (a_cancel && !b_cancel) {
    // Across logs, freeing a slot before a booking can only help the
    // booking. Within a log the swap may lift the cancel above the very
    // request that booked its slot (auditor witness: [request(12..),
    // cancel(12)] succeeds, the swapped order fails on the empty slot) —
    // the dynamic check must decide.
    return rel == LogRelation::kSameLog ? Constraint::kMaybe
                                        : Constraint::kSafe;
  }
  if (!a_cancel && b_cancel) {
    // Booking first might grab the slot being cancelled — check dynamically.
    return Constraint::kMaybe;
  }
  if (rel == LogRelation::kSameLog) {
    // Two requests recorded in one session: swapping changes which slots
    // each gets, contradicting what the user saw.
    return Constraint::kUnsafe;
  }
  // Concurrent requests sharing this calendar compete for slots.
  return Constraint::kMaybe;
}

std::string Calendar::describe() const {
  std::ostringstream os;
  os << owner_ << "{";
  bool first = true;
  for (const auto& [hour, label] : slots_) {
    if (!first) os << ", ";
    os << hour << ":00=" << label;
    first = false;
  }
  os << "}";
  return os.str();
}

std::optional<int> RequestAppointmentAction::find_slot(
    const Universe& u) const {
  const auto& a = u.as<Calendar>(cal_a_);
  const auto& b = u.as<Calendar>(cal_b_);
  for (int hour = earliest_; hour <= latest_; ++hour) {
    if (a.free_at(hour) && b.free_at(hour)) return hour;
  }
  return std::nullopt;
}

bool RequestAppointmentAction::precondition(const Universe& u) const {
  return find_slot(u).has_value();
}

bool RequestAppointmentAction::execute(Universe& u) const {
  const auto slot = find_slot(u);
  if (!slot) return false;
  u.as<Calendar>(cal_a_).book(*slot, label_);
  u.as<Calendar>(cal_b_).book(*slot, label_);
  return true;
}

bool CancelAppointmentAction::precondition(const Universe& u) const {
  return !u.as<Calendar>(cal_).free_at(hour_);
}

bool CancelAppointmentAction::execute(Universe& u) const {
  return u.as<Calendar>(cal_).cancel(hour_);
}

}  // namespace icecube
