// Shared integer register with read/write semantics (§2.4, Figures 2 and 4).
//
// Order-method rationale, from the paper:
//  - across logs: "avoid losing writes, but allow a read to be ordered
//    before an unrelated write" — a concurrent read may precede a foreign
//    write (it returns the value its user saw), but a foreign write must not
//    be ordered before a concurrent read; two concurrent writes are `maybe`
//    (order matters, checked dynamically).
//  - within a log: reads commute with reads and writes with writes, but a
//    read never swaps with a write (it would change the value returned
//    during isolated execution).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Read/write integer register.
class RwRegister final : public SharedObject {
 public:
  explicit RwRegister(std::int64_t initial = 0) : value_(initial) {}

  [[nodiscard]] std::int64_t value() const { return value_; }
  void write(std::int64_t v) { value_ = v; }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<RwRegister>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(RwRegister);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "register=" + std::to_string(value_);
  }

 private:
  std::int64_t value_;
};

/// Writes a fixed value. Tag: write(value). Never fails dynamically.
class WriteAction final : public SimpleAction {
 public:
  WriteAction(ObjectId reg, std::int64_t value)
      : SimpleAction(Tag("write", {value}), {reg}), reg_(reg), value_(value) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe& u) const override {
    u.as<RwRegister>(reg_).write(value_);
    return true;
  }

 private:
  ObjectId reg_;
  std::int64_t value_;
};

/// Reads the register. If `expected` is set, the precondition checks the
/// value still matches what the isolated user observed (the paper's
/// "similarly to, but more flexibly than, a database lock").
class ReadAction final : public SimpleAction {
 public:
  explicit ReadAction(ObjectId reg,
                      std::optional<std::int64_t> expected = std::nullopt)
      : SimpleAction(Tag("read", expected
                                     ? std::vector<std::int64_t>{*expected}
                                     : std::vector<std::int64_t>{}),
                     {reg}),
        reg_(reg),
        expected_(expected) {}

  [[nodiscard]] bool precondition(const Universe& u) const override {
    return !expected_ || u.as<RwRegister>(reg_).value() == *expected_;
  }
  bool execute(Universe&) const override { return true; }

 private:
  ObjectId reg_;
  std::optional<std::int64_t> expected_;
};

}  // namespace icecube
