#include "objects/counter.hpp"

namespace icecube {

Constraint Counter::order(const Action& a, const Action& b,
                          LogRelation rel) const {
  const bool a_dec = a.tag().op == "decrement";
  const bool b_dec = b.tag().op == "decrement";

  if (rel == LogRelation::kSameLog) {
    // Figure 5: swapping a decrement to before an increment could make an
    // intermediate state go negative where the log did not; disallowed.
    if (a_dec && !b_dec) return Constraint::kUnsafe;
    return Constraint::kSafe;
  }
  // Figure 3 (across logs): increments first; any pair headed by a
  // decrement must clear the dynamic non-negativity check. That includes
  // decrement/decrement: each may succeed alone, yet jointly overdraw
  // (value=5: dec(3) then dec(5) fails where dec(5) alone succeeds), so
  // `safe`'s §2.3 promise cannot be made for it.
  if (a_dec) return Constraint::kMaybe;
  return Constraint::kSafe;
}

}  // namespace icecube
