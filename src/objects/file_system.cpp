#include "objects/file_system.hpp"

#include <sstream>

namespace icecube {

namespace fspath {

std::string parent(std::string_view path) {
  if (path == "/" || path.empty()) return "/";
  const auto slash = path.find_last_of('/');
  if (slash == 0) return "/";
  return std::string(path.substr(0, slash));
}

bool covers(std::string_view ancestor, std::string_view path) {
  if (ancestor == path) return true;
  if (ancestor == "/") return true;
  return path.size() > ancestor.size() && path.starts_with(ancestor) &&
         path[ancestor.size()] == '/';
}

}  // namespace fspath

FileSystem::FileSystem() { nodes_["/"] = Node{true, {}}; }

bool FileSystem::exists(const std::string& path) const {
  return nodes_.contains(path);
}
bool FileSystem::is_dir(const std::string& path) const {
  const auto it = nodes_.find(path);
  return it != nodes_.end() && it->second.dir;
}
bool FileSystem::is_file(const std::string& path) const {
  const auto it = nodes_.find(path);
  return it != nodes_.end() && !it->second.dir;
}

std::optional<std::string> FileSystem::read(const std::string& path) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end() || it->second.dir) return std::nullopt;
  return it->second.content;
}

std::vector<std::string> FileSystem::list() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) out.push_back(path);
  return out;
}

bool FileSystem::mkdir(const std::string& path) {
  if (exists(path) || !is_dir(fspath::parent(path))) return false;
  nodes_[path] = Node{true, {}};
  return true;
}

bool FileSystem::write(const std::string& path, std::string content) {
  if (is_dir(path) || !is_dir(fspath::parent(path))) return false;
  nodes_[path] = Node{false, std::move(content)};
  return true;
}

bool FileSystem::remove(const std::string& path) {
  if (!exists(path) || path == "/") return false;
  // Erase the node and, for directories, the whole subtree.
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (fspath::covers(path, it->first)) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
  return true;
}

Constraint FileSystem::order(const Action& a, const Action& b,
                             LogRelation rel) const {
  const Tag& ta = a.tag();
  const Tag& tb = b.tag();
  const std::string& pa = ta.str_param(0);
  const std::string& pb = tb.str_param(0);
  const bool related = fspath::covers(pa, pb) || fspath::covers(pb, pa);

  if (rel == LogRelation::kSameLog) {
    // Within a log, keep the user's order for related paths (swapping could
    // change what the user saw); unrelated paths commute.
    return related ? Constraint::kUnsafe : Constraint::kSafe;
  }

  // Across logs. Unrelated paths commute outright.
  if (!related) return Constraint::kSafe;

  const bool a_del = ta.op == "fsdelete";
  const bool b_del = tb.op == "fsdelete";
  const bool a_makes = ta.op == "fswrite" || ta.op == "mkdir";
  const bool b_makes = tb.op == "fswrite" || tb.op == "mkdir";

  // The paper's file example: creating work under (or at) something the
  // other user deletes must not be silently discarded — creation before
  // deletion is unsafe; deletion first is maybe (the creation will then
  // fail dynamically and the user is notified).
  if (a_makes && b_del && fspath::covers(pb, pa)) return Constraint::kUnsafe;
  if (a_del && b_makes && fspath::covers(pa, pb)) return Constraint::kMaybe;

  // Two concurrent updates of the same path: order-dependent, conflicting —
  // leave it to the dynamic stage.
  if (pa == pb) return Constraint::kMaybe;

  // Remaining ancestor-related combinations (e.g. mkdir parent then write
  // child): possible, verified dynamically.
  return Constraint::kMaybe;
}

std::string FileSystem::describe() const {
  std::ostringstream os;
  os << "fs{" << nodes_.size() << " nodes}";
  return os.str();
}

std::string FileSystem::fingerprint() const {
  std::ostringstream os;
  for (const auto& [path, node] : nodes_) {
    os << path << (node.dir ? "/" : "=" + node.content) << ";";
  }
  return os.str();
}

bool MkdirAction::precondition(const Universe& u) const {
  const auto& fs = u.as<FileSystem>(fs_);
  return !fs.exists(path_) && fs.is_dir(fspath::parent(path_));
}
bool MkdirAction::execute(Universe& u) const {
  return u.as<FileSystem>(fs_).mkdir(path_);
}

bool WriteFileAction::precondition(const Universe& u) const {
  const auto& fs = u.as<FileSystem>(fs_);
  return !fs.is_dir(path_) && fs.is_dir(fspath::parent(path_));
}
bool WriteFileAction::execute(Universe& u) const {
  return u.as<FileSystem>(fs_).write(path_, content_);
}

bool DeleteAction::precondition(const Universe& u) const {
  return u.as<FileSystem>(fs_).exists(path_);
}
bool DeleteAction::execute(Universe& u) const {
  return u.as<FileSystem>(fs_).remove(path_);
}

}  // namespace icecube
