// Shared text with operational transformation (§5).
//
// "Reconciliation needs to compensate for the difference between an
// operation performed by an isolated user in the context of its local view
// ... and performing the same operation in the context of the reconciled
// state ... a text editing application might designate edits by the
// position of the affected characters — but concurrent edits scheduled
// earlier by reconciliation might change that numbering ... arguments need
// to be translated to make sense in the new context, viz., character
// numbers remapped. This translation, called Operational Transformation,
// is surprisingly complex."
//
// This module supplies that translation for a shared text buffer:
//
//  - `TextEdit` + `include_transform`: the OT kernel. Insert positions
//    shift across concurrent inserts/deletes (ties broken by site id so
//    both relative orders converge — the TP1 property, tested); delete
//    ranges are maintained as *range sets*, so a concurrent insert into the
//    middle of a range splits it instead of swallowing the new text.
//  - `TextBuffer`: a SharedObject holding the text and the history of edits
//    applied since the common base. Executing an edit include-transforms it
//    against the concurrent (other-site) edits already applied.
//  - `InsertTextAction` / `DeleteTextAction`: log-recordable actions whose
//    tags carry (site, position, length) for static analysis.
//
// Because transformation makes concurrent edits commute, the buffer's
// order method reports cross-log pairs as `safe` — the scheduler chains
// them without search. Known limitation (inherent to this classic
// two-party IT scheme): convergence is guaranteed pairwise (TP1); the TP2
// puzzle cases of 3+ concurrent sites are out of scope, as they are in the
// paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// One primitive text edit, in the coordinates of some text revision.
struct TextEdit {
  enum class Kind : std::uint8_t { kInsert, kDelete } kind;
  int site = 0;     ///< originating site; breaks insert-position ties
  std::size_t pos = 0;
  std::string text;      ///< inserted text (kInsert)
  std::size_t len = 0;   ///< deleted length (kDelete)

  static TextEdit insert(int site, std::size_t pos, std::string text) {
    TextEdit e;
    e.kind = Kind::kInsert;
    e.site = site;
    e.pos = pos;
    e.text = std::move(text);
    return e;
  }
  static TextEdit remove(int site, std::size_t pos, std::size_t len) {
    TextEdit e;
    e.kind = Kind::kDelete;
    e.site = site;
    e.pos = pos;
    e.len = len;
    return e;
  }
};

/// A delete transformed across concurrent edits may become several disjoint
/// ranges (a concurrent insert splits it). Inserts stay a single position.
struct TransformedEdit {
  TextEdit::Kind kind;
  int site = 0;
  std::size_t pos = 0;                                  // kInsert
  std::string text;                                     // kInsert
  std::vector<std::pair<std::size_t, std::size_t>> ranges;  // kDelete
};

/// Lifts `e` into a transformable form (one range for a delete).
[[nodiscard]] TransformedEdit lift(const TextEdit& e);

/// Inclusion transform: rewrites `e` (in-place) so that it means the same
/// thing *after* `applied` has been applied to the text.
void include_transform(TransformedEdit& e, const TextEdit& applied);

/// Shared text buffer. The history records every edit as applied since the
/// buffer's construction (the common base of the next reconciliation).
class TextBuffer final : public SharedObject {
 public:
  explicit TextBuffer(std::string initial = {}) : text_(std::move(initial)) {}

  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] const std::vector<TextEdit>& history() const {
    return history_;
  }

  /// Transforms `edit` against the concurrent (other-site) history entries
  /// and applies it. Returns false if the transformed edit falls outside
  /// the text (a genuine dynamic conflict).
  bool apply(const TextEdit& edit);

  /// Rebuilds a buffer from persisted state (text plus applied-edit
  /// history, both in their stored form). Used by the universe codec.
  static TextBuffer restore(std::string text, std::vector<TextEdit> history) {
    TextBuffer buf(std::move(text));
    buf.history_ = std::move(history);
    return buf;
  }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<TextBuffer>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    return sizeof(TextBuffer) + text_.size() +
           history_.size() * sizeof(TextEdit);
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "text[" + std::to_string(text_.size()) + "]=\"" + text_ + "\"";
  }
  [[nodiscard]] std::string fingerprint() const override { return text_; }

 private:
  std::string text_;
  std::vector<TextEdit> history_;
};

/// Inserts `text` at `pos` (coordinates of the originating site's view).
class InsertTextAction final : public SimpleAction {
 public:
  InsertTextAction(ObjectId buffer, int site, std::size_t pos,
                   std::string text)
      : SimpleAction(Tag("tins",
                         {site, static_cast<std::int64_t>(pos),
                          static_cast<std::int64_t>(text.size())},
                         {text}),
                     {buffer}),
        buffer_(buffer),
        edit_(TextEdit::insert(site, pos, std::move(text))) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;  // bounds are checked post-transform, in execute
  }
  bool execute(Universe& u) const override {
    return u.as<TextBuffer>(buffer_).apply(edit_);
  }

 private:
  ObjectId buffer_;
  TextEdit edit_;
};

/// Deletes `len` characters at `pos` (originating site's coordinates).
class DeleteTextAction final : public SimpleAction {
 public:
  DeleteTextAction(ObjectId buffer, int site, std::size_t pos,
                   std::size_t len)
      : SimpleAction(Tag("tdel", {site, static_cast<std::int64_t>(pos),
                                  static_cast<std::int64_t>(len)}),
                     {buffer}),
        buffer_(buffer),
        edit_(TextEdit::remove(site, pos, len)) {}

  [[nodiscard]] bool precondition(const Universe&) const override {
    return true;
  }
  bool execute(Universe& u) const override {
    return u.as<TextBuffer>(buffer_).apply(edit_);
  }

 private:
  ObjectId buffer_;
  TextEdit edit_;
};

}  // namespace icecube
