#include "objects/introspect.hpp"

#include <memory>
#include <string>

#include "objects/calendar.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/line_file.hpp"
#include "objects/rw_register.hpp"
#include "objects/sysadmin.hpp"
#include "objects/text.hpp"

namespace icecube {

namespace {

AuditSubject counter_subject() {
  AuditSubject s;
  s.name = "counter";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<Counter>(5));
    return u;
  };
  // Amounts 0..6 straddle the initial balance, so sampled prefixes reach
  // states where a decrement is exactly affordable — the boundary the
  // non-negativity invariant guards.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    const auto amount = static_cast<std::int64_t>(rng.below(7));
    if (rng.chance(0.5)) {
      return std::make_shared<IncrementAction>(ObjectId(0), amount);
    }
    return std::make_shared<DecrementAction>(ObjectId(0), amount);
  };
  return s;
}

AuditSubject rw_register_subject() {
  AuditSubject s;
  s.name = "rw_register";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<RwRegister>(0));
    return u;
  };
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    const auto value = static_cast<std::int64_t>(rng.below(4));
    if (rng.chance(0.5)) {
      return std::make_shared<WriteAction>(ObjectId(0), value);
    }
    // Half the reads pin the value they expect to observe (the paper's
    // "more flexibly than a database lock"), half are unconditional.
    if (rng.chance(0.5)) {
      return std::make_shared<ReadAction>(ObjectId(0), value);
    }
    return std::make_shared<ReadAction>(ObjectId(0));
  };
  return s;
}

AuditSubject calendar_subject() {
  AuditSubject s;
  s.name = "calendar";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<Calendar>("alice"));
    (void)u.add(std::make_unique<Calendar>("bob"));
    return u;
  };
  // A narrow 4-hour day keeps the two calendars contended, so bookings and
  // cancellations genuinely compete for slots.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    const int hour = 9 + static_cast<int>(rng.below(4));
    if (rng.chance(0.4)) {
      return std::make_shared<CancelAppointmentAction>(
          ObjectId(rng.below(2)), hour);
    }
    const int latest = hour + static_cast<int>(rng.below(3));
    return std::make_shared<RequestAppointmentAction>(
        ObjectId(0), ObjectId(1), hour, latest,
        "m" + std::to_string(rng.below(4)));
  };
  return s;
}

AuditSubject line_file_subject() {
  AuditSubject s;
  s.name = "line_file";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<LineFile>(
        std::vector<std::string>{"l0", "l1", "l2"}));
    return u;
  };
  // Expected-content values drawn from both the base lines and the
  // replacement pool: edits chain (expected = an earlier replacement) and
  // conflict (expected no longer matches) in the sampled states.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    static const char* kPool[] = {"l0", "l1", "l2", "x", "y", "z"};
    const auto line = rng.below(3);
    const std::string expected = kPool[rng.below(6)];
    const std::string replacement = kPool[3 + rng.below(3)];
    return std::make_shared<SetLineAction>(ObjectId(0), line, expected,
                                           replacement);
  };
  return s;
}

AuditSubject file_system_subject() {
  AuditSubject s;
  s.name = "file_system";
  s.make_universe = [] {
    Universe u;
    auto fs = std::make_unique<FileSystem>();
    (void)fs->mkdir("/a");
    (void)fs->write("/a/f", "seed");
    (void)u.add(std::move(fs));
    return u;
  };
  // The path pool nests ("/a" covers "/a/f" and "/a/g"), so sampled pairs
  // hit every branch of the cover-based order method, including the paper's
  // write-under-deleted-directory case.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    static const char* kPaths[] = {"/a", "/a/f", "/a/g", "/b", "/b/h"};
    const std::string path = kPaths[rng.below(5)];
    switch (rng.below(3)) {
      case 0:
        return std::make_shared<MkdirAction>(ObjectId(0), path);
      case 1:
        return std::make_shared<WriteFileAction>(
            ObjectId(0), path, "c" + std::to_string(rng.below(3)));
      default:
        return std::make_shared<DeleteAction>(ObjectId(0), path);
    }
  };
  return s;
}

AuditSubject text_subject() {
  AuditSubject s;
  s.name = "text";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<TextBuffer>("hello world"));
    return u;
  };
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    const int site = 1 + static_cast<int>(rng.below(2));
    const std::size_t pos = rng.below(9);
    if (rng.chance(0.6)) {
      static const char* kText[] = {"a", "bb", "ccc"};
      return std::make_shared<InsertTextAction>(ObjectId(0), site, pos,
                                                kText[rng.below(3)]);
    }
    return std::make_shared<DeleteTextAction>(ObjectId(0), site, pos,
                                              1 + rng.below(3));
  };
  return s;
}

AuditSubject sysadmin_subject() {
  AuditSubject s;
  s.name = "sysadmin";
  s.make_universe = [] {
    Universe u;
    (void)u.add(std::make_unique<OsSystem>(4));
    (void)u.add(std::make_unique<SysBudget>(1000));
    return u;
  };
  // Costs straddle the initial budget (two purchases can jointly overdraw
  // it) and driver versions straddle the upgrade, mirroring the paper's
  // motivating example.
  s.sample_action = [](const Universe&, Rng& rng) -> ActionPtr {
    switch (rng.below(4)) {
      case 0: {
        const int from = 4 + static_cast<int>(rng.below(2));
        return std::make_shared<UpgradeOsAction>(ObjectId(0), from, from + 1);
      }
      case 1: {
        const int device = 1 + static_cast<int>(rng.below(3));
        const auto cost = static_cast<std::int64_t>(400 * (1 + rng.below(3)));
        return std::make_shared<BuyDeviceAction>(ObjectId(0), ObjectId(1),
                                                 device, cost);
      }
      case 2: {
        const int device = 1 + static_cast<int>(rng.below(3));
        const int version = 4 + static_cast<int>(rng.below(2));
        return std::make_shared<InstallDriverAction>(ObjectId(0), device,
                                                     version);
      }
      default:
        return std::make_shared<FundBudgetAction>(
            ObjectId(1), static_cast<std::int64_t>(500));
    }
  };
  return s;
}

}  // namespace

std::vector<AuditSubject> object_audit_subjects() {
  std::vector<AuditSubject> subjects;
  subjects.push_back(counter_subject());
  subjects.push_back(rw_register_subject());
  subjects.push_back(calendar_subject());
  subjects.push_back(line_file_subject());
  subjects.push_back(file_system_subject());
  subjects.push_back(text_subject());
  subjects.push_back(sysadmin_subject());
  return subjects;
}

}  // namespace icecube
