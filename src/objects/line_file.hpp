// Line-oriented shared file — the CVS example of §1.1.
//
// "What constitutes a conflict and how to resolve it depends on semantics
// and on user intent. (One example is CVS, where non-overlapping writes
// conflict if and only if they occur in the same line of the same text
// file.)"
//
// A `LineFile` is a fixed roster of numbered lines. `SetLineAction`
// carries both the text the editor saw (its dynamic precondition — the
// line must still read that way) and the replacement, so concurrent edits
// of one line surface as dynamic conflicts exactly as CVS flags them, while
// edits of different lines commute freely. The `cvs_merge` baseline
// (src/baseline) performs the classic three-way merge over the same
// actions; IceCube subsumes it and additionally searches orderings when
// edits chain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// A text file addressed by line number (0-based, fixed line count — the
/// classic RCS/CVS model where hunks replace line ranges).
class LineFile final : public SharedObject {
 public:
  explicit LineFile(std::vector<std::string> lines = {})
      : lines_(std::move(lines)) {}

  [[nodiscard]] std::size_t line_count() const { return lines_.size(); }
  [[nodiscard]] const std::string& line(std::size_t i) const {
    return lines_.at(i);
  }
  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }

  bool set_line(std::size_t i, std::string text) {
    if (i >= lines_.size()) return false;
    lines_[i] = std::move(text);
    return true;
  }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<LineFile>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    std::size_t bytes = sizeof(LineFile);
    for (const auto& l : lines_) bytes += sizeof(l) + l.size();
    return bytes;
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override {
    return "file[" + std::to_string(lines_.size()) + " lines]";
  }
  [[nodiscard]] std::string fingerprint() const override {
    std::string out;
    for (const auto& l : lines_) {
      out += l;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
};

/// Replaces the content of one line. The precondition pins the content the
/// editing user saw: if a concurrent edit got there first, this edit fails
/// dynamically — the CVS conflict, surfaced instead of silently clobbered.
class SetLineAction final : public SimpleAction {
 public:
  SetLineAction(ObjectId file, std::size_t line, std::string expected,
                std::string replacement)
      : SimpleAction(Tag("setline", {static_cast<std::int64_t>(line)},
                         {expected, replacement}),
                     {file}),
        file_(file),
        line_(line),
        expected_(std::move(expected)),
        replacement_(std::move(replacement)) {}

  [[nodiscard]] bool precondition(const Universe& u) const override {
    const auto& f = u.as<LineFile>(file_);
    return line_ < f.line_count() && f.line(line_) == expected_;
  }
  bool execute(Universe& u) const override {
    return u.as<LineFile>(file_).set_line(line_, replacement_);
  }

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] const std::string& replacement() const { return replacement_; }

 private:
  ObjectId file_;
  std::size_t line_;
  std::string expected_;
  std::string replacement_;
};

}  // namespace icecube
