// In-memory hierarchical file system (§2.4's write/delete example; also the
// substrate for the file-synchroniser scenario of the related-work
// discussion).
//
// Order-method rationale, from the paper: one isolated user writes a file
// while another deletes that file's parent directory. It is *formally* safe
// to write then delete, but that silently loses the first user's work — so,
// "contrary to mathematical intuition", write-before-delete is marked
// `unsafe` and delete-before-write `maybe`, which triggers a dynamic failure
// and notifies the user.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// Normalised absolute path helpers. Paths look like "/a/b/c"; the root is
/// "/".
namespace fspath {
[[nodiscard]] std::string parent(std::string_view path);
/// True iff `ancestor` equals `path` or is a proper ancestor directory.
[[nodiscard]] bool covers(std::string_view ancestor, std::string_view path);
}  // namespace fspath

/// Tree of directories and files; files carry string content.
class FileSystem final : public SharedObject {
 public:
  FileSystem();

  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] bool is_dir(const std::string& path) const;
  [[nodiscard]] bool is_file(const std::string& path) const;
  [[nodiscard]] std::optional<std::string> read(const std::string& path) const;
  [[nodiscard]] std::size_t entry_count() const { return nodes_.size(); }
  [[nodiscard]] std::vector<std::string> list() const;

  bool mkdir(const std::string& path);
  bool write(const std::string& path, std::string content);
  /// Removes a file, or a directory with its whole subtree.
  bool remove(const std::string& path);

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<FileSystem>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    std::size_t bytes = sizeof(FileSystem);
    for (const auto& [path, node] : nodes_) {
      bytes += sizeof(node) + path.size() + node.content.size();
    }
    return bytes;
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string fingerprint() const override;

 private:
  struct Node {
    bool dir = false;
    std::string content;  // files only
  };
  std::map<std::string, Node> nodes_;  // keyed by normalised path
};

/// mkdir(path): parent must exist and be a directory; path must be absent.
class MkdirAction final : public SimpleAction {
 public:
  MkdirAction(ObjectId fs, std::string path)
      : SimpleAction(Tag("mkdir", {}, {path}), {fs}),
        fs_(fs),
        path_(std::move(path)) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId fs_;
  std::string path_;
};

/// write(path, content): creates or overwrites a file; parent must exist.
class WriteFileAction final : public SimpleAction {
 public:
  WriteFileAction(ObjectId fs, std::string path, std::string content)
      : SimpleAction(Tag("fswrite", {}, {path, content}), {fs}),
        fs_(fs),
        path_(std::move(path)),
        content_(std::move(content)) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId fs_;
  std::string path_;
  std::string content_;
};

/// delete(path): removes a file or a directory subtree; path must exist.
class DeleteAction final : public SimpleAction {
 public:
  DeleteAction(ObjectId fs, std::string path)
      : SimpleAction(Tag("fsdelete", {}, {path}), {fs}),
        fs_(fs),
        path_(std::move(path)) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId fs_;
  std::string path_;
};

}  // namespace icecube
