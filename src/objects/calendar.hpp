// Calendar application (§2, second motivating example).
//
// Each user owns a calendar of hourly slots. An appointment request between
// two users books the earliest slot in its window that is free in *both*
// calendars ("as close to 9:00 as possible"); a cancellation frees a slot.
// The paper's example has a unique successful ordering — freeC, appBC,
// appAB — which IceCube must discover.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/action.hpp"
#include "core/universe.hpp"

namespace icecube {

/// One user's calendar: hour → appointment label; absent hours are free.
class Calendar final : public SharedObject {
 public:
  explicit Calendar(std::string owner) : owner_(std::move(owner)) {}

  [[nodiscard]] const std::string& owner() const { return owner_; }
  [[nodiscard]] bool free_at(int hour) const { return !slots_.contains(hour); }
  [[nodiscard]] std::optional<std::string> appointment_at(int hour) const {
    const auto it = slots_.find(hour);
    if (it == slots_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t booked_count() const { return slots_.size(); }
  [[nodiscard]] const std::map<int, std::string>& bookings() const {
    return slots_;
  }

  void book(int hour, std::string label) { slots_[hour] = std::move(label); }
  bool cancel(int hour) { return slots_.erase(hour) > 0; }

  [[nodiscard]] std::unique_ptr<SharedObject> clone() const override {
    return std::make_unique<Calendar>(*this);
  }
  [[nodiscard]] std::size_t approx_bytes() const override {
    std::size_t bytes = sizeof(Calendar) + owner_.size();
    for (const auto& [hour, label] : slots_) {
      bytes += sizeof(hour) + sizeof(label) + label.size();
    }
    return bytes;
  }
  [[nodiscard]] Constraint order(const Action& a, const Action& b,
                                 LogRelation rel) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string owner_;
  std::map<int, std::string> slots_;
};

/// Books the earliest hour in [earliest, latest] free in both calendars.
/// Precondition: such an hour exists.
class RequestAppointmentAction final : public SimpleAction {
 public:
  RequestAppointmentAction(ObjectId cal_a, ObjectId cal_b, int earliest,
                           int latest, std::string label)
      : SimpleAction(Tag("request", {earliest, latest}, {label}),
                     {cal_a, cal_b}),
        cal_a_(cal_a),
        cal_b_(cal_b),
        earliest_(earliest),
        latest_(latest),
        label_(std::move(label)) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  [[nodiscard]] std::optional<int> find_slot(const Universe& u) const;

  ObjectId cal_a_;
  ObjectId cal_b_;
  int earliest_;
  int latest_;
  std::string label_;
};

/// Cancels the appointment at `hour` in one calendar.
class CancelAppointmentAction final : public SimpleAction {
 public:
  CancelAppointmentAction(ObjectId cal, int hour)
      : SimpleAction(Tag("cancel", {hour}), {cal}), cal_(cal), hour_(hour) {}

  [[nodiscard]] bool precondition(const Universe& u) const override;
  bool execute(Universe& u) const override;

 private:
  ObjectId cal_;
  int hour_;
};

}  // namespace icecube
