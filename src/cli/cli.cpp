#include "cli/cli.hpp"

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/graph_lint.hpp"
#include "core/graphviz.hpp"
#include "core/reconciler.hpp"
#include "objects/counter.hpp"
#include "objects/file_system.hpp"
#include "objects/sysadmin.hpp"
#include "serialize/framing.hpp"
#include "serialize/log_codec.hpp"
#include "serialize/universe_codec.hpp"

namespace icecube::cli {

namespace {

std::optional<std::string> read_file(const std::string& path,
                                     std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "error: cannot open '" << path << "'\n";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content,
                std::ostream& err) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    err << "error: cannot write '" << path << "'\n";
    return false;
  }
  out << content;
  return true;
}

int usage(std::ostream& err) {
  err << "usage:\n"
         "  icecube demo <bank|sysadmin|files>\n"
         "  icecube reconcile <universe> <log>... "
         "[--backend dfs|greedy|ls|auto]\n"
         "           [--ls-seed N] [--ls-moves N] [--heuristic "
         "all|safe|strict]\n"
         "           [--skip-failed] [--max-schedules N] [--deadline S]\n"
         "           [--threads N] [--save FILE] [--dot]\n"
         "  icecube show <universe-file|log-file>\n"
         "  icecube lint <universe> <log>... [--json]\n";
  return 2;
}

int cmd_demo(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.size() != 1) return usage(err);
  Universe universe;
  if (args[0] == "bank") {
    (void)universe.add(std::make_unique<Counter>(100));
  } else if (args[0] == "sysadmin") {
    universe = make_sysadmin_example().initial;
  } else if (args[0] == "files") {
    auto fs = std::make_unique<FileSystem>();
    (void)fs->mkdir("/shared");
    (void)fs->write("/shared/readme", "hello");
    (void)universe.add(std::move(fs));
  } else {
    err << "error: unknown demo '" << args[0] << "'\n";
    return 2;
  }
  const auto encoded =
      encode_universe(universe, ObjectRegistry::with_builtins());
  out << *encoded;
  return 0;
}

int cmd_show(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.size() != 1) return usage(err);
  const auto text = read_file(args[0], err);
  if (!text) return 1;

  if (text->starts_with("icecube-universe")) {
    const auto decoded =
        decode_universe(*text, ObjectRegistry::with_builtins());
    if (!decoded.ok()) {
      err << "error: " << decoded.error << '\n';
      return 1;
    }
    out << decoded.universe->describe();
    return 0;
  }
  if (text->starts_with("icecube-log")) {
    const auto decoded = decode_log(*text, ActionRegistry::with_builtins());
    if (!decoded.ok()) {
      err << "error: " << decoded.error << '\n';
      return 1;
    }
    out << "log '" << decoded.log->name() << "', " << decoded.log->size()
        << " action(s):\n";
    for (const auto& action : *decoded.log) {
      out << "  " << action->describe() << '\n';
    }
    return 0;
  }
  err << "error: '" << args[0] << "' is neither a universe nor a log file\n";
  return 1;
}

int cmd_reconcile(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  std::vector<std::string> files;
  ReconcilerOptions options;
  std::string save_path;
  bool dot = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--heuristic") {
      if (++i >= args.size()) return usage(err);
      if (args[i] == "all") {
        options.heuristic = Heuristic::kAll;
      } else if (args[i] == "safe") {
        options.heuristic = Heuristic::kSafe;
      } else if (args[i] == "strict") {
        options.heuristic = Heuristic::kStrict;
      } else {
        err << "error: unknown heuristic '" << args[i] << "'\n";
        return 2;
      }
    } else if (arg == "--backend") {
      if (++i >= args.size()) return usage(err);
      if (args[i] == "dfs") {
        options.backend = SolverKind::kDfs;
      } else if (args[i] == "greedy") {
        options.backend = SolverKind::kGreedy;
      } else if (args[i] == "ls") {
        options.backend = SolverKind::kLocalSearch;
      } else if (args[i] == "auto") {
        options.backend = SolverKind::kAuto;
      } else {
        err << "error: unknown backend '" << args[i]
            << "' (expected dfs|greedy|ls|auto)\n";
        return 2;
      }
    } else if (arg == "--ls-seed") {
      if (++i >= args.size()) return usage(err);
      const auto seed = serialize_detail::parse_number<std::uint64_t>(args[i]);
      if (!seed) {
        err << "error: --ls-seed expects a number, got '" << args[i] << "'\n";
        return 2;
      }
      options.local_search.seed = *seed;
    } else if (arg == "--ls-moves") {
      if (++i >= args.size()) return usage(err);
      const auto moves = serialize_detail::parse_number<std::uint64_t>(args[i]);
      if (!moves) {
        err << "error: --ls-moves expects a count, got '" << args[i] << "'\n";
        return 2;
      }
      options.local_search.max_moves = *moves;
    } else if (arg == "--skip-failed") {
      options.failure_mode = FailureMode::kSkipAction;
    } else if (arg == "--max-schedules") {
      if (++i >= args.size()) return usage(err);
      const auto cap = serialize_detail::parse_number<std::uint64_t>(args[i]);
      if (!cap) {
        err << "error: --max-schedules expects a count, got '" << args[i]
            << "'\n";
        return 2;
      }
      options.limits.max_schedules = *cap;
    } else if (arg == "--deadline") {
      if (++i >= args.size()) return usage(err);
      try {
        std::size_t consumed = 0;
        options.limits.max_seconds = std::stod(args[i], &consumed);
        if (consumed != args[i].size()) throw std::invalid_argument(args[i]);
      } catch (const std::exception&) {
        err << "error: --deadline expects seconds, got '" << args[i]
            << "'\n";
        return 2;
      }
    } else if (arg == "--threads") {
      if (++i >= args.size()) return usage(err);
      const auto lanes = serialize_detail::parse_number<std::size_t>(args[i]);
      if (!lanes) {
        err << "error: --threads expects a count (0 = all cores), got '"
            << args[i] << "'\n";
        return 2;
      }
      options.threads = *lanes;
    } else if (arg == "--save") {
      if (++i >= args.size()) return usage(err);
      save_path = args[i];
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg.starts_with("--")) {
      err << "error: unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() < 2) return usage(err);

  const auto universe_text = read_file(files[0], err);
  if (!universe_text) return 1;
  const auto universe =
      decode_universe(*universe_text, ObjectRegistry::with_builtins());
  if (!universe.ok()) {
    err << "error: " << files[0] << ": " << universe.error << '\n';
    return 1;
  }

  std::vector<Log> logs;
  const ActionRegistry actions = ActionRegistry::with_builtins();
  for (std::size_t i = 1; i < files.size(); ++i) {
    const auto log_text = read_file(files[i], err);
    if (!log_text) return 1;
    auto decoded = decode_log(*log_text, actions);
    if (!decoded.ok()) {
      err << "error: " << files[i] << ": " << decoded.error << '\n';
      return 1;
    }
    // A well-formed log can still target objects this universe does not
    // have; the constraint builder must never see such an action.
    for (const auto& action : *decoded.log) {
      for (ObjectId target : action->targets()) {
        if (target.index() >= universe.universe->size()) {
          err << "error: " << files[i] << ": action '"
              << action->describe() << "' targets object "
              << target.value() << ", but the universe has only "
              << universe.universe->size() << " object(s)\n";
          return 1;
        }
      }
    }
    logs.push_back(std::move(*decoded.log));
  }

  if (dot && (options.backend == SolverKind::kGreedy ||
              options.backend == SolverKind::kLocalSearch)) {
    // The DOT rendering walks the dense relations, which the sparse
    // greedy/local-search path never builds.
    err << "error: --dot requires --backend dfs or auto\n";
    return 2;
  }
  Reconciler reconciler(*universe.universe, std::move(logs), options);
  if (dot) {
    out << to_dot(reconciler.records(), reconciler.relations());
    return 0;
  }

  const ReconcileResult result = reconciler.run();
  if (!result.found_any()) {
    err << "no outcome found (limits too tight or every branch pruned)\n";
    return 1;
  }
  const Outcome& best = result.best();
  out << "schedule ("
      << (best.degraded ? "degraded"
                        : best.complete ? "complete" : "partial")
      << ", " << best.schedule.size() << " executed, " << best.skipped.size()
      << " dropped, " << best.cutset.size() << " cut):\n"
      << reconciler.describe_schedule(best.schedule);
  out << "final state:\n" << best.final_state.describe();
  out << "search: " << result.stats.schedules_explored()
      << " schedules explored in " << result.stats.elapsed_seconds << "s"
      << " [" << result.stats.backend << " backend]"
      << (result.stats.hit_limit ? " (limit hit)" : "") << '\n';
  if (result.stats.moves_proposed > 0) {
    out << "local search: " << result.stats.moves_proposed << " moves proposed, "
        << result.stats.moves_accepted << " accepted\n";
  }
  if (result.degraded) {
    out << "degraded: budget exhausted with no complete schedule; greedy "
           "fallback ran, "
        << result.degraded_dropped.size() << " action(s) dropped\n";
  }

  if (!save_path.empty()) {
    const auto encoded = encode_universe(best.final_state,
                                         ObjectRegistry::with_builtins());
    if (!encoded) {
      err << "error: merged universe contains unserialisable objects\n";
      return 1;
    }
    if (!write_file(save_path, *encoded, err)) return 1;
    out << "merged universe written to " << save_path << '\n';
  }
  return 0;
}

// Runs the graph linter (src/analysis) over a concrete problem instance:
// decodes the universe and logs exactly as `reconcile` does, builds the
// constraint graph, and reports D-cycles, redundant D edges, dead actions
// and degenerate relations. Exit status 1 iff an error-level finding fired.
int cmd_lint(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::vector<std::string> files;
  bool json = false;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg.starts_with("--")) {
      err << "error: unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() < 2) return usage(err);

  const auto universe_text = read_file(files[0], err);
  if (!universe_text) return 1;
  const auto universe =
      decode_universe(*universe_text, ObjectRegistry::with_builtins());
  if (!universe.ok()) {
    err << "error: " << files[0] << ": " << universe.error << '\n';
    return 1;
  }

  std::vector<Log> logs;
  const ActionRegistry actions = ActionRegistry::with_builtins();
  for (std::size_t i = 1; i < files.size(); ++i) {
    const auto log_text = read_file(files[i], err);
    if (!log_text) return 1;
    auto decoded = decode_log(*log_text, actions);
    if (!decoded.ok()) {
      err << "error: " << files[i] << ": " << decoded.error << '\n';
      return 1;
    }
    for (const auto& action : *decoded.log) {
      for (ObjectId target : action->targets()) {
        if (target.index() >= universe.universe->size()) {
          err << "error: " << files[i] << ": action '"
              << action->describe() << "' targets object "
              << target.value() << ", but the universe has only "
              << universe.universe->size() << " object(s)\n";
          return 1;
        }
      }
    }
    logs.push_back(std::move(*decoded.log));
  }

  const analysis::AnalysisReport report =
      analysis::lint_problem(*universe.universe, logs, files[0]);
  if (json) {
    out << report.to_json();
  } else {
    out << report.render(analysis::Severity::kInfo);
  }
  return report.worst_severity() >= analysis::Severity::kError ? 1 : 0;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty()) return usage(err);
  const std::string& command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "demo") return cmd_demo(rest, out, err);
    if (command == "show") return cmd_show(rest, out, err);
    if (command == "reconcile") return cmd_reconcile(rest, out, err);
    if (command == "lint") return cmd_lint(rest, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  err << "error: unknown command '" << command << "'\n";
  return usage(err);
}

}  // namespace icecube::cli
