// The `icecube` command-line tool, as a testable library.
//
// Subcommands:
//
//   icecube demo <bank|sysadmin|files>
//       Print a serialised demo universe to stdout.
//   icecube reconcile <universe-file> <log-file>... [options]
//       Reconcile the logs against the universe; print the chosen schedule,
//       statistics and final state. Options:
//         --heuristic all|safe|strict     (default safe)
//         --skip-failed                   drop failing actions (default:
//                                         abort the branch)
//         --max-schedules N               search cap (default 100000)
//         --deadline SECONDS              wall-clock budget; if it expires
//                                         with no complete schedule the
//                                         result degrades to the greedy
//                                         fallback (marked "degraded")
//         --save <file>                   write the merged universe
//         --dot                           print the relations graph instead
//                                         of searching
//   icecube show <universe-file|log-file>
//       Pretty-print a serialised universe or log.
//   icecube lint <universe-file> <log-file>... [--json]
//       Run the constraint-graph linter (src/analysis) over the problem:
//       reports dependence cycles (with minimal witnesses), redundant D
//       edges, dead actions and degenerate relations. Exit 1 iff an
//       error-level finding fired.
//
// The entry point takes explicit streams so tests can drive it without a
// process boundary; `tools/icecube_tool.cpp` wires it to main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace icecube::cli {

/// Runs the tool. Returns the process exit code (0 on success).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace icecube::cli
